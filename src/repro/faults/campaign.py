"""The fault-injection campaign: plant faults, classify what recovery does.

For every (workload, controller) unit the campaign re-uses the PR-2
oracle machinery — deterministic op streams, golden prefix states,
crash-site enumeration — then, at a handful of interior crash sites:

1. crashes the machine and checks the *clean* image recovers to the
   golden state (a failing baseline disqualifies the unit, not the
   faults);
2. generates a seeded :class:`~repro.faults.plan.FaultPlan` from the
   image's populated fault targets and, for each fault, recovers an
   independently-cloned corrupted image;
3. separately re-executes to the same site with a *degraded ADR
   budget* planted pre-crash, forcing a partial drain, and checks the
   salvage invariant: every fully-drained live slot is recovered and
   every lost slot is enumerated in ``report.slots_lost``.

Each fault gets a :class:`FaultOutcome`:

* ``detected`` — recovery raised a typed
  :class:`~repro.recovery.errors.RecoveryError` (or the Ma-SU raised
  ``IntegrityError``); for degraded drains, the losses were correctly
  enumerated and the salvage invariant held.
* ``tolerated`` — recovery completed and the reconstructed state equals
  the golden model's prefix (e.g. a stale-counter flip masked by the
  Anubis shadow overlay, or a cache parity hit refetched from NVM).
* ``silent`` — neither: the fault slipped through and the reconstructed
  state diverges from the golden model.  Any silent outcome fails the
  campaign.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import ControllerKind, SimConfig
from repro.core.masu import IntegrityError
from repro.faults.injector import FaultInjector, apply_spec
from repro.faults.plan import FaultPlan, FaultSpec
from repro.oracle.check import CONTROLLER_MATRIX, controller_matrix, select_sites
from repro.oracle.driver import OracleExecution
from repro.oracle.golden import prefix_states
from repro.oracle.ops import generate_ops
from repro.oracle.reconstruct import OracleDivergence, reconstruct_state
from repro.oracle.sites import enumerate_sites
from repro.recovery.crash import CrashImage, crash_system
from repro.recovery.errors import RecoveryError
from repro.recovery.recover import recover_system
from repro.wpq.adr import ADRDrain
from repro.workloads import ORACLE_SEMANTICS

DETECTED = "detected"
TOLERATED = "tolerated"
SILENT = "silent"


@dataclass
class FaultOutcome:
    """What one injected fault did to one crash site."""

    site_id: int
    kind: str
    spec: str
    outcome: str
    detail: str = ""
    #: Detections logged by integrity checkers via the injector.
    observations: int = 0


@dataclass
class FaultUnitReport:
    """One (workload, controller) campaign sweep."""

    workload: str
    controller: str
    transactions: int
    seed: int
    sites_used: int = 0
    outcomes: List[FaultOutcome] = field(default_factory=list)
    #: Baseline (no-fault) failures and infrastructure errors.
    failures: List[str] = field(default_factory=list)

    def count(self, outcome: str) -> int:
        return sum(1 for o in self.outcomes if o.outcome == outcome)

    @property
    def passed(self) -> bool:
        return not self.failures and self.count(SILENT) == 0


@dataclass
class CampaignReport:
    """The whole campaign."""

    units: List[FaultUnitReport]
    seed: int = 0

    @property
    def passed(self) -> bool:
        return all(unit.passed for unit in self.units)

    def totals(self) -> Dict[str, int]:
        return {
            key: sum(unit.count(key) for unit in self.units)
            for key in (DETECTED, TOLERATED, SILENT)
        }

    def to_json(self) -> str:
        payload = {
            "passed": self.passed,
            "seed": self.seed,
            "totals": self.totals(),
            "units": [
                {**asdict(unit), "passed": unit.passed} for unit in self.units
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def fault_unit_payload(unit: FaultUnitReport) -> Dict[str, object]:
    """Wire/db-stable dict form of one fault unit (fleet ``faults`` jobs).

    Deterministic for a given (workload, config, seed, sites) — the
    campaign draws every fault from seeded RNGs — so the payload digest
    can be compared bit-for-bit across re-dispatched fleet units.
    """
    return {
        "kind": "faults",
        "workload": unit.workload,
        "controller": unit.controller,
        "transactions": unit.transactions,
        "seed": unit.seed,
        "sites_used": unit.sites_used,
        "detected": unit.count(DETECTED),
        "tolerated": unit.count(TOLERATED),
        "silent": unit.count(SILENT),
        "passed": unit.passed,
        "failures": list(unit.failures),
        "outcomes": [
            {"site_id": o.site_id, "kind": o.kind, "outcome": o.outcome}
            for o in unit.outcomes
        ],
    }


# ----------------------------------------------------------------------
# Per-fault classification
# ----------------------------------------------------------------------
def classify_recovery(
    image: CrashImage,
    injector: FaultInjector,
    commits_fired: int,
    ops,
    states,
    loss_expected: Tuple[List[int], int] = None,
) -> Tuple[str, str]:
    """Recover a (faulted) image and classify the result.

    Args:
        image: the crash image to recover (already corrupted / with the
            injector's drain-time faults baked in).
        injector: the fault injector attached to ``image.nvm``.
        commits_fired: persist completions the reference driver saw.
        ops, states: the unit's op stream and golden prefix states.
        loss_expected: for degraded-drain faults, ``(lost_slots,
            salvaged_live_count)`` computed from the drained image
            before recovery; enables the salvage-invariant check and
            relaxes the commit lower bound (lost slots may hold
            committed writes).

    Returns:
        ``(outcome, detail)`` with outcome in {detected, tolerated,
        silent}.
    """
    try:
        report = recover_system(image)
    except RecoveryError as exc:
        return DETECTED, f"{type(exc).__name__}: {exc}"
    except IntegrityError as exc:
        return DETECTED, f"IntegrityError: {exc}"

    lost_slots: List[int] = []
    if loss_expected is not None:
        expected_lost, salvaged_live = loss_expected
        if expected_lost and not report.partial_drain:
            return SILENT, "degraded drain not marked partial by recovery"
        if sorted(report.slots_lost) != sorted(expected_lost):
            return SILENT, (
                f"lost-slot report {sorted(report.slots_lost)} != actual "
                f"losses {sorted(expected_lost)}"
            )
        if report.wpq_entries_recovered != salvaged_live:
            return SILENT, (
                f"salvage invariant violated: recovered "
                f"{report.wpq_entries_recovered} live slots, image held "
                f"{salvaged_live}"
            )
        lost_slots = list(report.slots_lost)

    try:
        committed, state = reconstruct_state(report.masu, len(ops))
    except (IntegrityError, RecoveryError) as exc:
        # The recovered Ma-SU's own integrity machinery (data MACs,
        # tree verification) caught the corruption on first read.
        return DETECTED, f"{type(exc).__name__} at read-back: {exc}"
    except OracleDivergence as exc:
        if lost_slots:
            # Losing committed log records legitimately breaks the log
            # chain; the losses were detected and enumerated above.
            return DETECTED, (
                f"lost slots {lost_slots} reported; log reconstruction "
                f"stops at the loss: {type(exc).__name__}"
            )
        # The log's own sequence/checksum caught an inconsistency that
        # no *security* check did — that is a silent integrity escape.
        return SILENT, (
            "recovery accepted the image but log reconstruction "
            f"diverged: {exc}"
        )

    lower = 0 if lost_slots else commits_fired
    if not lower <= committed <= len(ops):
        return SILENT, (
            f"recovered {committed} commits outside [{lower}, {len(ops)}]"
        )
    if state != states[committed]:
        return SILENT, (
            f"reconstructed state after {committed} ops diverges from the "
            "golden model"
        )
    if lost_slots:
        return DETECTED, (
            f"partial drain salvaged {report.wpq_entries_recovered} live "
            f"slots, reported lost slots {lost_slots}; state matches "
            f"golden prefix at {committed} ops"
        )
    return TOLERATED, f"state matches golden prefix at {committed} ops"


def inject_and_classify(
    image: CrashImage,
    spec: FaultSpec,
    commits_fired: int,
    ops,
    states,
    seed: int = 0,
) -> Optional[Tuple[str, str, FaultInjector]]:
    """Clone ``image``, plant one media/runtime fault, classify recovery.

    Returns ``None`` when the fault's target does not exist on this
    image (the plan generator normally prevents this).
    """
    clone = image.clone()
    injector = FaultInjector(FaultPlan(seed=seed, faults=(spec,)))
    clone.nvm.attach_fault_injector(injector)
    if not apply_spec(clone.nvm, spec):
        return None
    outcome, detail = classify_recovery(
        clone, injector, commits_fired, ops, states
    )
    return outcome, detail, injector


# ----------------------------------------------------------------------
# Per-unit campaign
# ----------------------------------------------------------------------
def _run_to_site(config: SimConfig, ops, cycle: int) -> OracleExecution:
    execution = OracleExecution(config, ops)
    execution.run(until=cycle)
    return execution


def _degraded_drain_check(
    unit: FaultUnitReport,
    config: SimConfig,
    ops,
    states,
    site,
    battery: bool,
    seed: int,
) -> None:
    """Re-execute to ``site`` with a degraded ADR budget; check salvage."""
    execution = _run_to_site(config, ops, site.cycle)
    controller = execution.controller
    drain = getattr(controller, "adr_drain", None)
    if drain is None:
        return
    needed = drain.energy_needed(controller.wpq, 0)
    if needed < 2:
        return  # nothing buffered; a degraded budget has no bite
    spec = FaultSpec("adr-degrade", aux=max(1, needed // 2))
    injector = FaultInjector(FaultPlan(seed=seed, faults=(spec,)))
    image = crash_system(controller, battery=battery, injector=injector)

    # Pre-recovery census of the (partial) drained image: recovery must
    # salvage exactly the live records that landed and enumerate the
    # occupied slots that did not.
    census = ADRDrain(image.nvm, config.adr, config.misu_design)
    meta = census.read_meta()
    records = census.read_image()
    present = {record.slot for record in records}
    salvaged_live = sum(1 for record in records if not record.cleared)
    expected_lost = (
        [s for s in meta.occupied_slots() if s not in present]
        if meta is not None and meta.partial
        else []
    )

    outcome, detail = classify_recovery(
        image,
        injector,
        execution.commits_fired,
        ops,
        states,
        loss_expected=(expected_lost, salvaged_live),
    )
    unit.outcomes.append(
        FaultOutcome(
            site_id=site.site_id,
            kind=spec.kind,
            spec=spec.describe(),
            outcome=outcome,
            detail=detail,
            observations=len(injector.notes),
        )
    )


def run_fault_unit(
    workload: str,
    label: str,
    config: SimConfig,
    transactions: int,
    seed: int = 0,
    sites: int = 2,
) -> FaultUnitReport:
    """Run the fault campaign for one (workload, controller) unit."""
    unit = FaultUnitReport(
        workload=workload, controller=label,
        transactions=transactions, seed=seed,
    )
    ops = generate_ops(workload, transactions, seed)
    states = prefix_states(ORACLE_SEMANTICS[workload], ops)
    battery = config.controller is ControllerKind.EADR_SECURE

    try:
        enumeration = enumerate_sites(config, ops)
    except Exception as exc:
        unit.failures.append(f"site enumeration failed: {exc!r}")
        return unit
    # Interior sites carry live WPQ/metadata state; the first and last
    # (cold boot / quiescent) sites offer few fault targets.
    selected = select_sites(enumeration.sites, sites + 2)
    if len(selected) > 2:
        selected = selected[1:-1]
    unit.sites_used = len(selected)

    for site in selected:
        execution = _run_to_site(config, ops, site.cycle)
        image = crash_system(execution.controller, battery=battery)

        # Baseline: the clean image must recover to the golden state,
        # otherwise fault classifications at this site mean nothing.
        base_outcome, base_detail = classify_recovery(
            image.clone(), FaultInjector(FaultPlan(seed)),
            execution.commits_fired, ops, states,
        )
        if base_outcome != TOLERATED:
            unit.failures.append(
                f"site {site.site_id}: clean baseline did not recover "
                f"({base_outcome}: {base_detail})"
            )
            continue

        plan = FaultPlan.generate(seed ^ (site.site_id << 8), image)
        for spec in plan.faults:
            if spec.kind == "adr-degrade":
                continue  # planted pre-crash, handled below
            result = inject_and_classify(
                image, spec, execution.commits_fired, ops, states, seed=seed
            )
            if result is None:
                continue
            outcome, detail, injector = result
            unit.outcomes.append(
                FaultOutcome(
                    site_id=site.site_id,
                    kind=spec.kind,
                    spec=spec.describe(),
                    outcome=outcome,
                    detail=detail,
                    observations=len(injector.notes),
                )
            )

        _degraded_drain_check(unit, config, ops, states, site, battery, seed)
    return unit


def _unit_worker(item) -> FaultUnitReport:
    """Top-level fan-out worker (must be picklable)."""
    workload, label, transactions, seed, sites = item
    config = controller_matrix()[label]
    return run_fault_unit(
        workload, label, config, transactions, seed, sites=sites
    )


def run_campaign(
    workloads: List[str],
    controllers: Optional[List[str]] = None,
    transactions: int = 30,
    seed: int = 0,
    sites: int = 2,
    jobs: int = 1,
) -> CampaignReport:
    """Sweep the fault campaign over ``workloads`` x ``controllers``."""
    from repro.harness.parallel import fan_out

    matrix = controller_matrix()
    labels = list(controllers) if controllers else list(matrix)
    for label in labels:
        if label not in matrix:
            raise KeyError(
                f"unknown controller {label!r}; choose from {sorted(matrix)}"
            )
    for workload in workloads:
        if workload not in ORACLE_SEMANTICS:
            raise KeyError(
                f"workload {workload!r} has no oracle semantics; choose "
                f"from {sorted(ORACLE_SEMANTICS)}"
            )
    items = [
        (workload, label, transactions, seed, sites)
        for workload in workloads
        for label in labels
    ]
    units = fan_out(_unit_worker, items, jobs)
    return CampaignReport(units=units, seed=seed)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness faults",
        description="Deterministic fault-injection campaign",
    )
    parser.add_argument(
        "--workloads", default="hashmap",
        help="comma-separated workload names (default: hashmap)",
    )
    parser.add_argument(
        "--controllers", default=",".join(CONTROLLER_MATRIX),
        help="comma-separated controller labels "
             f"(default: all of {','.join(CONTROLLER_MATRIX)})",
    )
    parser.add_argument("--transactions", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sites", type=int, default=2,
        help="interior crash sites to inject at, per unit (default: 2)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all cores)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON campaign report here ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    from repro.harness.parallel import resolve_jobs

    report = run_campaign(
        workloads=[w for w in args.workloads.split(",") if w],
        controllers=[c for c in args.controllers.split(",") if c],
        transactions=args.transactions,
        seed=args.seed,
        sites=args.sites,
        jobs=resolve_jobs(args.jobs),
    )

    for unit in report.units:
        status = "ok" if unit.passed else "FAIL"
        print(
            f"[{status}] {unit.workload:>12} x {unit.controller:<14} "
            f"faults {len(unit.outcomes)}: "
            f"{unit.count(DETECTED)} detected, "
            f"{unit.count(TOLERATED)} tolerated, "
            f"{unit.count(SILENT)} SILENT"
        )
        for failure in unit.failures:
            print(f"       - {failure}")
        for outcome in unit.outcomes:
            if outcome.outcome == SILENT:
                print(
                    f"       - SILENT {outcome.spec} @ site "
                    f"{outcome.site_id}: {outcome.detail}"
                )
    totals = report.totals()
    print(
        ("CAMPAIGN PASS" if report.passed else "CAMPAIGN FAIL")
        + f": {sum(totals.values())} faults across {len(report.units)} "
        f"units ({totals[DETECTED]} detected, {totals[TOLERATED]} "
        f"tolerated, {totals[SILENT]} silent)"
    )

    if args.report:
        text = report.to_json()
        if args.report == "-":
            print(text)
        else:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
