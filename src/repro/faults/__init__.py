"""Deterministic fault injection (the robustness campaign).

* :mod:`repro.faults.plan` — the fault catalogue and seeded,
  serializable :class:`FaultPlan`.
* :mod:`repro.faults.injector` — applies plans to NVM devices and
  answers the hardware's drain-time fault queries.
* :mod:`repro.faults.campaign` — the campaign driver: inject at oracle
  crash sites, classify recovery outcomes (detected / tolerated /
  silent), roll up a JSON report (``python -m repro.harness faults``).
"""

from repro.faults.injector import FaultInjector, apply_spec
from repro.faults.plan import ALL_KINDS, FaultPlan, FaultSpec

__all__ = [
    "ALL_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "apply_spec",
]
