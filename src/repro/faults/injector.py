"""The fault injector: applies a plan and records what the system saw.

One injector carries one :class:`~repro.faults.plan.FaultPlan` and is
attached to an :class:`~repro.mem.nvm.NVMDevice` via
``nvm.attach_fault_injector``.  It plays three roles:

1. **Media faults** — :func:`apply_spec` / :meth:`FaultInjector.apply_media`
   corrupt the NVM contents directly (bit flips, dropped or swapped
   region entries).  These run once, against a crash image.
2. **Drain-time faults** — the ADR drain asks :meth:`adr_budget` for
   its (possibly degraded) energy budget; metadata caches ask
   :meth:`cache_parity_fault` whether a line just took a parity hit.
3. **Detection log** — integrity checkers call :meth:`observe` when a
   verification fails, so the campaign can attribute detections.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec, REGION_FLIP_KINDS
from repro.mem.nvm import NVMDevice
from repro.wpq.adr import WPQ_MAC_REGION


def apply_spec(nvm: NVMDevice, spec: FaultSpec) -> bool:
    """Apply one media-fault spec to ``nvm``.

    Returns ``True`` iff the fault landed (its target existed).
    Drain-time kinds (``adr-degrade``, ``cache-parity``) are not media
    faults; they return ``True`` without touching the device — they
    take effect through the injector's query hooks.
    """
    if spec.kind in ("adr-degrade", "cache-parity"):
        return True
    if spec.kind == "data-line-flip":
        assert spec.target is not None and spec.bit is not None
        return nvm.corrupt_line(spec.target, spec.bit)
    if spec.kind in REGION_FLIP_KINDS:
        assert spec.region and spec.target is not None and spec.bit is not None
        return nvm.corrupt_region_entry(spec.region, spec.target, spec.bit)
    if spec.kind == "wpq-truncate":
        assert spec.region and spec.target is not None
        hit = nvm.region_delete(spec.region, spec.target)
        # The matching MAC record vanishes with it (a torn drain loses
        # the whole slot, not just the entry bytes).
        nvm.region_delete(WPQ_MAC_REGION, spec.target)
        return hit
    if spec.kind == "wpq-meta-drop":
        assert spec.region is not None
        return nvm.region_delete(spec.region, spec.target or 0)
    if spec.kind == "wpq-reorder":
        assert spec.region and spec.target is not None and spec.aux is not None
        region = nvm.region(spec.region)
        a, b = spec.target, spec.aux
        if a not in region or b not in region:
            return False
        region[a], region[b] = region[b], region[a]
        macs = nvm.region(WPQ_MAC_REGION)
        mac_a, mac_b = macs.get(a), macs.get(b)
        if mac_a is not None or mac_b is not None:
            if mac_b is None:
                macs.pop(a, None)
            else:
                macs[a] = mac_b
            if mac_a is None:
                macs.pop(b, None)
            else:
                macs[b] = mac_a
        return True
    raise ValueError(f"unknown fault kind {spec.kind!r}")


class FaultInjector:
    """Carries one plan; answers the hardware's fault queries."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: (site, detail) pairs logged by integrity checkers.
        self.notes: List[Tuple[str, str]] = []
        self._parity_fired: set = set()

    # -- detection log --------------------------------------------------
    def observe(self, site: str, detail: str) -> None:
        self.notes.append((site, detail))

    def detections(self) -> List[Tuple[str, str]]:
        return list(self.notes)

    # -- drain-time faults ----------------------------------------------
    def adr_budget(self, full_budget: int) -> int:
        """The (possibly degraded) ADR energy budget for this drain."""
        budget = full_budget
        for spec in self.plan.faults:
            if spec.kind == "adr-degrade" and spec.aux is not None:
                budget = min(budget, spec.aux)
        if budget < full_budget:
            self.observe("adr.budget", f"degraded {full_budget} -> {budget}")
        return budget

    def cache_parity_fault(self, cache_name: str, key: int) -> bool:
        """One-shot: did this cache just take a parity hit on access?

        Fires on the *first* access to the named cache after attachment
        (the planted flip sits wherever the next access lands), then
        never again for that spec.
        """
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind == "cache-parity"
                and spec.region == cache_name
                and i not in self._parity_fired
            ):
                self._parity_fired.add(i)
                self.observe("cache.parity", f"{cache_name} key {key:#x}")
                return True
        return False

    # -- media faults ----------------------------------------------------
    def apply_media(self, nvm: NVMDevice) -> List[Tuple[FaultSpec, bool]]:
        """Apply every media fault in the plan; returns (spec, landed)."""
        return [(spec, apply_spec(nvm, spec)) for spec in self.plan.faults]


__all__ = ["FaultInjector", "apply_spec"]
