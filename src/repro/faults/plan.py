"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded, serializable description of which
faults to plant into a crash image (or into the live machine, for
drain-time faults).  Plans are generated *from* a crash image: the
catalogue below is filtered down to fault kinds whose target population
is non-empty on that image (a config that never wrote a ToC node cannot
take a ToC-node flip), then concrete targets are drawn with a
``random.Random(seed)`` so the same (seed, image) always yields the
same plan.

Fault catalogue (``kind`` strings):

======================  ================================================
``data-line-flip``      one-bit flip in a stored NVM data line
``counter-flip``        one-bit flip in a stored encryption-counter block
``shadow-flip``         one-bit flip in an Anubis shadow entry
``toc-node-flip``       one-bit flip in a persisted ToC node (lazy cfgs)
``toc-leaf-mac-flip``   one-bit flip in a persisted ToC leaf MAC
``data-mac-flip``       one-bit flip in a per-line data MAC
``wpq-record-flip``     one-bit flip in a drained WPQ record (cleared
                        flag or ciphertext bits — the MAC'd portion)
``wpq-mac-flip``        one-bit flip in a drained per-entry MAC record
``wpq-truncate``        drop one drained WPQ record (and its MAC)
``wpq-meta-drop``       drop the drained-image meta record
``wpq-reorder``         swap two drained WPQ records (and their MACs)
``adr-degrade``         cap the drain's ADR energy budget at ``aux``
``cache-parity``        one-shot parity hit in a metadata cache
                        (``region`` = cache name)
======================  ================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.masu import (
    COUNTER_REGION,
    DEDUP_MAP_REGION,
    TOC_LEAF_REGION,
    TOC_NODE_REGION,
)
from repro.security import anubis, data_mac
from repro.wpq.adr import WPQ_IMAGE_REGION, WPQ_MAC_REGION, WPQ_META_REGION

#: Drained WPQ record layout (mirrors repro.wpq.adr): a 17-byte header
#: (address, pad counter, cleared flag) followed by 72 ciphertext
#: bytes.  The stored address/counter header fields are *unused* or
#: merely cross-checked at recovery, so record flips target the MAC'd
#: portion — the cleared-flag byte onward.
_RECORD_HEADER_BYTES = 17
_RECORD_TOTAL_BYTES = _RECORD_HEADER_BYTES + 72
_RECORD_MACED_FIRST_BIT = (_RECORD_HEADER_BYTES - 1) * 8

#: kind -> NVM metadata region it corrupts (single-bit-flip kinds).
REGION_FLIP_KINDS: Dict[str, str] = {
    "counter-flip": COUNTER_REGION,
    "shadow-flip": anubis.REGION,
    "toc-node-flip": TOC_NODE_REGION,
    "toc-leaf-mac-flip": TOC_LEAF_REGION,
    "data-mac-flip": data_mac.REGION,
    "wpq-record-flip": WPQ_IMAGE_REGION,
    "wpq-mac-flip": WPQ_MAC_REGION,
}

ALL_KINDS: Tuple[str, ...] = tuple(REGION_FLIP_KINDS) + (
    "data-line-flip",
    "wpq-truncate",
    "wpq-meta-drop",
    "wpq-reorder",
    "adr-degrade",
    "cache-parity",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault."""

    kind: str
    #: NVM metadata region (or metadata-cache name for ``cache-parity``).
    region: Optional[str] = None
    #: Region key / line address / slot index, kind-dependent.
    target: Optional[int] = None
    #: Bit offset for single-bit flips.
    bit: Optional[int] = None
    #: Kind-specific extra: second slot for ``wpq-reorder``, the
    #: degraded budget for ``adr-degrade``.
    aux: Optional[int] = None

    def to_dict(self) -> Dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            region=payload.get("region"),
            target=payload.get("target"),
            bit=payload.get("bit"),
            aux=payload.get("aux"),
        )

    def describe(self) -> str:
        parts = [self.kind]
        if self.region is not None:
            parts.append(f"region={self.region}")
        if self.target is not None:
            parts.append(f"target={self.target:#x}")
        if self.bit is not None:
            parts.append(f"bit={self.bit}")
        if self.aux is not None:
            parts.append(f"aux={self.aux}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable batch of faults."""

    seed: int
    faults: Tuple[FaultSpec, ...] = ()

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            seed=payload["seed"],
            faults=tuple(
                FaultSpec.from_dict(f) for f in payload.get("faults", [])
            ),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        image,
        kinds: Optional[Iterable[str]] = None,
        degraded_budget: Optional[int] = None,
    ) -> "FaultPlan":
        """Draw one concrete fault per applicable catalogue kind.

        Args:
            seed: RNG seed; same (seed, image) -> same plan.
            image: a :class:`repro.recovery.crash.CrashImage` whose NVM
                populations define which kinds are applicable.
            kinds: restrict the catalogue (default: every kind).
            degraded_budget: when set, include an ``adr-degrade`` fault
                with this budget (the caller computes it from the live
                pre-crash machine; it cannot be derived from an image).
        """
        rng = random.Random(seed)
        wanted = set(kinds) if kinds is not None else set(ALL_KINDS)
        nvm = image.nvm
        faults: List[FaultSpec] = []

        for kind in sorted(wanted & set(REGION_FLIP_KINDS)):
            region = REGION_FLIP_KINDS[kind]
            keys = sorted(k for k, v in nvm.region(region).items() if v)
            if not keys:
                continue
            target = rng.choice(keys)
            size_bits = len(nvm.region(region)[target]) * 8
            if kind == "wpq-record-flip":
                bit = rng.randrange(_RECORD_MACED_FIRST_BIT, size_bits)
            else:
                bit = rng.randrange(size_bits)
            faults.append(FaultSpec(kind, region=region, target=target, bit=bit))

        if "data-line-flip" in wanted:
            lines = nvm.resident_line_addresses()
            if lines:
                faults.append(
                    FaultSpec(
                        "data-line-flip",
                        target=rng.choice(lines),
                        bit=rng.randrange(512),
                    )
                )

        image_slots = sorted(nvm.region(WPQ_IMAGE_REGION))
        if "wpq-truncate" in wanted and image_slots:
            faults.append(
                FaultSpec(
                    "wpq-truncate",
                    region=WPQ_IMAGE_REGION,
                    target=rng.choice(image_slots),
                )
            )
        if "wpq-meta-drop" in wanted and nvm.region(WPQ_META_REGION):
            faults.append(
                FaultSpec("wpq-meta-drop", region=WPQ_META_REGION, target=0)
            )
        if "wpq-reorder" in wanted and len(image_slots) >= 2:
            a, b = rng.sample(image_slots, 2)
            faults.append(
                FaultSpec(
                    "wpq-reorder", region=WPQ_IMAGE_REGION, target=a, aux=b
                )
            )
        if "adr-degrade" in wanted and degraded_budget is not None:
            faults.append(FaultSpec("adr-degrade", aux=degraded_budget))
        if "cache-parity" in wanted:
            faults.append(
                FaultSpec("cache-parity", region=rng.choice(["counter$", "mt$"]))
            )
        return cls(seed=seed, faults=tuple(faults))


__all__ = [
    "ALL_KINDS",
    "REGION_FLIP_KINDS",
    "FaultPlan",
    "FaultSpec",
]
