"""The NVM module: functional byte store + banked timing model.

Functionally, the device is a sparse map of 64-byte lines (what an
attacker can scan or tamper with — everything here is *outside* the
TCB).  For timing, the device has ``num_banks`` independently busy
banks; an access to a busy bank queues behind it.  Timing uses a
busy-until bookkeeping scheme rather than processes, which keeps the
hot path allocation-free.

Security metadata that architecturally lives in NVM (counter blocks,
MT nodes, data MACs, the Anubis shadow table, drained WPQ images) is
stored in named *metadata regions* of the same device so that crash
and attack tests see one coherent persistent image.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CACHELINE_BYTES, NVMConfig


class NVMDevice:
    """PCM-like persistent memory with banked timing."""

    def __init__(self, config: Optional[NVMConfig] = None) -> None:
        self.config = config or NVMConfig()
        self._lines: Dict[int, bytes] = {}
        self._regions: Dict[str, Dict[int, bytes]] = {}
        # Separate per-bank calendars for reads and writes: the memory
        # controller schedules reads with priority (demand misses must
        # not sit behind the drained write stream), so reads contend
        # only with other reads while writes fill bank idle time.
        self._bank_free_at = [0] * self.config.num_banks
        self._read_free_at = [0] * self.config.num_banks
        # Latency constants hoisted off the config attribute chain —
        # timed_access runs once per memory operation.
        self._num_banks = self.config.num_banks
        self._read_latency = self.config.read_latency
        self._write_latency = self.config.write_latency
        self.reads = 0
        self.writes = 0
        self.meta_reads = 0
        self.meta_writes = 0
        #: Per-line media write counts (endurance/wear levelling input).
        self._wear: Dict[int, int] = {}
        #: Fault-injection hook (:mod:`repro.faults`).  ``None`` in
        #: normal operation; when attached, the ADR drain consults it
        #: for a degraded energy budget and integrity checks report
        #: detections to it.  Media corruption itself goes through the
        #: ``corrupt_*`` helpers below.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Functional data plane
    # ------------------------------------------------------------------
    @staticmethod
    def line_address(address: int) -> int:
        return address & ~(CACHELINE_BYTES - 1)

    def read_line(self, address: int) -> Optional[bytes]:
        """Return the 64-byte line at ``address`` (line-aligned), if ever written."""
        return self._lines.get(self.line_address(address))

    def write_line(self, address: int, data: bytes) -> None:
        if len(data) != CACHELINE_BYTES:
            raise ValueError(f"line must be {CACHELINE_BYTES} bytes, got {len(data)}")
        line = self.line_address(address)
        self._lines[line] = data
        self._wear[line] = self._wear.get(line, 0) + 1

    def tamper_line(self, address: int, data: bytes) -> None:
        """Attacker-controlled overwrite (attack models use this)."""
        self.write_line(address, data)

    @property
    def resident_line_count(self) -> int:
        return len(self._lines)

    def resident_line_addresses(self) -> "List[int]":
        """Sorted addresses of every written line (fault-target census)."""
        return sorted(self._lines)

    # ------------------------------------------------------------------
    # Metadata regions (counters, MACs, tree nodes, shadow table, WPQ image)
    # ------------------------------------------------------------------
    def region(self, name: str) -> Dict[int, bytes]:
        reg = self._regions.get(name)
        if reg is None:
            reg = {}
            self._regions[name] = reg
        return reg

    def region_write(self, name: str, key: int, data: bytes) -> None:
        self.region(name)[key] = data
        self.meta_writes += 1

    def region_read(self, name: str, key: int) -> Optional[bytes]:
        self.meta_reads += 1
        return self.region(name).get(key)

    def region_clear(self, name: str) -> None:
        self.region(name).clear()

    def region_delete(self, name: str, key: int) -> bool:
        """Drop one region entry (fault/attack surface, not a data op).

        Returns ``True`` iff the entry existed.  Does not count toward
        ``meta_writes`` — this models media loss, not controller work.
        """
        return self.region(name).pop(key, None) is not None

    # ------------------------------------------------------------------
    # Fault injection (media corruption; see repro.faults)
    # ------------------------------------------------------------------
    def attach_fault_injector(self, injector) -> None:
        """Install a :class:`repro.faults.injector.FaultInjector`."""
        self.fault_injector = injector

    @staticmethod
    def _flip_bit(data: bytes, bit: int) -> bytes:
        byte = (bit // 8) % len(data)
        mask = 1 << (bit % 8)
        out = bytearray(data)
        out[byte] ^= mask
        return bytes(out)

    def corrupt_line(self, address: int, bit: int) -> bool:
        """XOR one bit of a stored data line (NVM media fault).

        Returns ``True`` iff the line existed.  Bypasses wear/stat
        accounting: this is a media event, not a controller write.
        """
        line = self.line_address(address)
        data = self._lines.get(line)
        if data is None:
            return False
        self._lines[line] = self._flip_bit(data, bit)
        return True

    def corrupt_region_entry(self, name: str, key: int, bit: int) -> bool:
        """XOR one bit of a stored metadata-region entry."""
        reg = self.region(name)
        data = reg.get(key)
        if data is None or not data:
            return False
        reg[key] = self._flip_bit(data, bit)
        return True

    # ------------------------------------------------------------------
    # Timing plane
    # ------------------------------------------------------------------
    def _bank_for(self, address: int) -> int:
        # Line-interleaved banking.
        return (address >> 6) % self.config.num_banks

    def timed_access(self, now: int, address: int, is_write: bool) -> int:
        """Book an access and return its completion cycle.

        The access starts when both the request has arrived (``now``)
        and the target bank is free; the bank stays busy until the
        access completes.
        """
        bank = (address >> 6) % self._num_banks
        if is_write:
            free = self._bank_free_at[bank]
            done = (now if now > free else free) + self._write_latency
            self._bank_free_at[bank] = done
            self.writes += 1
        else:
            free = self._read_free_at[bank]
            done = (now if now > free else free) + self._read_latency
            self._read_free_at[bank] = done
            self.reads += 1
        return done

    def timed_write_accept(self, now: int, address: int) -> "Tuple[int, int]":
        """Book a write; returns ``(accepted, done)``.

        ``accepted`` is when the device has taken the command + data
        (the WPQ slot can be reclaimed); ``done`` is media completion
        (the bank stays busy until then).
        """
        bank = self._bank_for(address)
        start = max(now, self._bank_free_at[bank])
        done = start + self.config.write_latency
        self._bank_free_at[bank] = done
        self.writes += 1
        return start + self.config.accept_latency, done

    def timed_meta_access(self, now: int, key: int, is_write: bool) -> int:
        """Timing for a security-metadata access (same banks, tagged stats)."""
        done = self.timed_access(now, key << 6, is_write)
        if is_write:
            self.meta_writes += 1
            self.writes -= 1
        else:
            self.meta_reads += 1
            self.reads -= 1
        return done

    def reset_timing(self) -> None:
        self._bank_free_at = [0] * self.config.num_banks
        self._read_free_at = [0] * self.config.num_banks

    # ------------------------------------------------------------------
    # Endurance / wear
    # ------------------------------------------------------------------
    def wear_of(self, address: int) -> int:
        """Media writes absorbed by the line at ``address``."""
        return self._wear.get(self.line_address(address), 0)

    def wear_summary(self) -> Dict[str, float]:
        """Aggregate wear statistics (endurance analysis).

        ``imbalance`` is max/mean — 1.0 means perfectly even wear; PCM
        endurance is limited by the most-written line, so high values
        flag wear-levelling trouble.
        """
        if not self._wear:
            return {"lines": 0, "total": 0, "max": 0, "mean": 0.0,
                    "imbalance": 0.0}
        values = self._wear.values()
        total = sum(values)
        peak = max(values)
        mean = total / len(self._wear)
        return {
            "lines": len(self._wear),
            "total": total,
            "max": peak,
            "mean": mean,
            "imbalance": peak / mean if mean else 0.0,
        }

    def stats(self) -> Dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "meta_reads": self.meta_reads,
            "meta_writes": self.meta_writes,
            "resident_lines": self.resident_line_count,
        }
