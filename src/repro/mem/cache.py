"""Set-associative write-back cache (tag store with true LRU).

The timing model only needs hit/miss/dirty-eviction behaviour, so the
cache tracks tags and state, not data bytes.  Data flows through the
functional layer (NVM device + security units) instead.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.config import CacheConfig


class CacheLineState(enum.Enum):
    CLEAN = "clean"
    DIRTY = "dirty"


@dataclass(frozen=True)
class EvictedLine:
    """A victim pushed out of a cache level."""

    address: int
    dirty: bool


class SetAssociativeCache:
    """True-LRU set-associative cache over line-aligned addresses.

    All addresses handed in are aligned down to the line size.  Each set
    is an ``OrderedDict`` from tag -> state with LRU order (oldest
    first), giving O(1) lookup/insert/evict.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")
        self._num_sets = config.num_sets
        self._sets: List["OrderedDict[int, CacheLineState]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    # -- address helpers ----------------------------------------------
    def line_address(self, address: int) -> int:
        return (address >> self._line_shift) << self._line_shift

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line % self._num_sets, line // self._num_sets

    # -- operations ----------------------------------------------------
    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLineState]:
        """Return the line's state on hit (updating LRU), else ``None``."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        state = cache_set.get(tag)
        if state is None:
            return None
        if touch:
            cache_set.move_to_end(tag)
        return state

    def access(self, address: int, is_write: bool) -> bool:
        """Reference a line; allocate on miss.  Returns ``True`` on hit.

        Misses must be completed by the caller via :meth:`insert` (the
        hierarchy decides where the fill comes from); this method only
        records the hit/miss and updates state on hits.
        """
        state = self.lookup(address)
        if state is None:
            self.misses += 1
            return False
        self.hits += 1
        if is_write and state is CacheLineState.CLEAN:
            index, tag = self._index_tag(address)
            self._sets[index][tag] = CacheLineState.DIRTY
        return True

    def insert(self, address: int, dirty: bool) -> Optional[EvictedLine]:
        """Fill a line, evicting the LRU victim if the set is full."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        victim: Optional[EvictedLine] = None
        if tag in cache_set:
            # Upgrade in place; never downgrade dirty -> clean here.
            if dirty or cache_set[tag] is CacheLineState.DIRTY:
                cache_set[tag] = CacheLineState.DIRTY
            cache_set.move_to_end(tag)
            return None
        if len(cache_set) >= self.config.associativity:
            victim_tag, victim_state = cache_set.popitem(last=False)
            victim_line = (victim_tag * self._num_sets + index) << self._line_shift
            victim_dirty = victim_state is CacheLineState.DIRTY
            if victim_dirty:
                self.dirty_evictions += 1
            victim = EvictedLine(victim_line, victim_dirty)
        cache_set[tag] = CacheLineState.DIRTY if dirty else CacheLineState.CLEAN
        return victim

    def clean_line(self, address: int) -> bool:
        """Write back a line in place (clwb semantics).

        Returns ``True`` if the line was present and dirty (so a
        writeback toward memory is needed).  The line stays resident in
        CLEAN state, exactly like ``clwb``.
        """
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        state = cache_set.get(tag)
        if state is None:
            return False
        was_dirty = state is CacheLineState.DIRTY
        cache_set[tag] = CacheLineState.CLEAN
        return was_dirty

    def invalidate_line(self, address: int) -> Optional[EvictedLine]:
        """Drop a line (clflush semantics); returns it if it was dirty."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        state = cache_set.pop(tag, None)
        if state is None:
            return None
        dirty = state is CacheLineState.DIRTY
        if dirty:
            self.dirty_evictions += 1
        return EvictedLine(self.line_address(address), dirty)

    def contains(self, address: int) -> bool:
        return self.lookup(address, touch=False) is not None

    def resident_lines(self) -> Iterator[Tuple[int, CacheLineState]]:
        """Iterate (line_address, state) over all resident lines."""
        for index, cache_set in enumerate(self._sets):
            for tag, state in cache_set.items():
                yield ((tag * self._num_sets + index) << self._line_shift, state)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "dirty_evictions": self.dirty_evictions,
            "occupancy": self.occupancy,
        }
