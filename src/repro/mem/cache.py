"""Set-associative write-back cache (tag store with true LRU).

The timing model only needs hit/miss/dirty-eviction behaviour, so the
cache tracks tags and state, not data bytes.  Data flows through the
functional layer (NVM device + security units) instead.

Hot-state layout: each set is a plain insertion-ordered ``dict`` from
tag to a bare ``int`` state (0 clean / 1 dirty) — LRU order is the
dict's insertion order (oldest first), a touch is delete-and-reinsert,
and the victim is ``next(iter(set))``.  The public API still speaks
:class:`CacheLineState`; the integers never escape this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.config import CacheConfig


class CacheLineState(enum.Enum):
    CLEAN = "clean"
    DIRTY = "dirty"


#: Internal per-line states (dict values); index into ``_STATE_ENUM``.
_CLEAN = 0
_DIRTY = 1
_STATE_ENUM = (CacheLineState.CLEAN, CacheLineState.DIRTY)


@dataclass(frozen=True)
class EvictedLine:
    """A victim pushed out of a cache level."""

    address: int
    dirty: bool


class SetAssociativeCache:
    """True-LRU set-associative cache over line-aligned addresses.

    All addresses handed in are aligned down to the line size.  Each set
    is a plain dict from tag -> int state in LRU order (oldest first),
    giving O(1) lookup/insert/evict without ``OrderedDict``'s per-node
    linked-list overhead.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._sets: List[Dict[int, int]] = [
            {} for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    # -- address helpers ----------------------------------------------
    def line_address(self, address: int) -> int:
        return (address >> self._line_shift) << self._line_shift

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line % self._num_sets, line // self._num_sets

    # -- operations ----------------------------------------------------
    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLineState]:
        """Return the line's state on hit (updating LRU), else ``None``."""
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        state = cache_set.get(tag)
        if state is None:
            return None
        if touch:
            del cache_set[tag]
            cache_set[tag] = state
        return _STATE_ENUM[state]

    def access(self, address: int, is_write: bool) -> bool:
        """Reference a line; allocate on miss.  Returns ``True`` on hit.

        Misses must be completed by the caller via :meth:`insert` (the
        hierarchy decides where the fill comes from); this method only
        records the hit/miss and updates state on hits.
        """
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        state = cache_set.get(tag)
        if state is None:
            self.misses += 1
            return False
        self.hits += 1
        del cache_set[tag]
        cache_set[tag] = _DIRTY if is_write else state
        return True

    def reference(self, address: int, is_write: bool) -> Tuple[bool, Optional[EvictedLine]]:
        """Fused :meth:`access` + miss-fill :meth:`insert` in one set walk.

        The hot path for the metadata caches: one index/tag computation
        and one dict probe decide hit bookkeeping, LRU touch, miss fill
        and victim selection together.  Returns ``(hit, victim)``; the
        victim is only ever non-``None`` on a miss into a full set.
        Semantically identical to ``access(a, w)`` followed on miss by
        ``insert(a, dirty=w)``.
        """
        line = address >> self._line_shift
        index = line % self._num_sets
        cache_set = self._sets[index]
        tag = line // self._num_sets
        state = cache_set.get(tag)
        if state is not None:
            self.hits += 1
            del cache_set[tag]
            cache_set[tag] = _DIRTY if is_write else state
            return True, None
        self.misses += 1
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self._assoc:
            victim_tag = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_tag) == _DIRTY
            if victim_dirty:
                self.dirty_evictions += 1
            victim = EvictedLine(
                (victim_tag * self._num_sets + index) << self._line_shift,
                victim_dirty,
            )
        cache_set[tag] = _DIRTY if is_write else _CLEAN
        return False, victim

    def reference_line(self, line: int, is_write: bool) -> Tuple[bool, Optional[int], bool]:
        """:meth:`reference` keyed on the *line number* (``address >> shift``).

        The metadata caches address blocks by abstract integer keys that
        map 1:1 onto line numbers; taking the line directly skips two
        shifts per probe and the :class:`EvictedLine` allocation.
        Returns ``(hit, victim_line, victim_dirty)`` with ``victim_line``
        ``None`` when nothing was evicted.
        """
        index = line % self._num_sets
        cache_set = self._sets[index]
        tag = line // self._num_sets
        state = cache_set.get(tag)
        if state is not None:
            self.hits += 1
            del cache_set[tag]
            cache_set[tag] = _DIRTY if is_write else state
            return True, None, False
        self.misses += 1
        victim_line: Optional[int] = None
        victim_dirty = False
        if len(cache_set) >= self._assoc:
            victim_tag = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_tag) == _DIRTY
            if victim_dirty:
                self.dirty_evictions += 1
            victim_line = victim_tag * self._num_sets + index
        cache_set[tag] = _DIRTY if is_write else _CLEAN
        return False, victim_line, victim_dirty

    def insert(self, address: int, dirty: bool) -> Optional[EvictedLine]:
        """Fill a line, evicting the LRU victim if the set is full."""
        line = address >> self._line_shift
        index = line % self._num_sets
        cache_set = self._sets[index]
        tag = line // self._num_sets
        state = cache_set.get(tag)
        if state is not None:
            # Upgrade in place; never downgrade dirty -> clean here.
            del cache_set[tag]
            cache_set[tag] = _DIRTY if dirty else state
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self._assoc:
            victim_tag = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_tag) == _DIRTY
            if victim_dirty:
                self.dirty_evictions += 1
            victim = EvictedLine(
                (victim_tag * self._num_sets + index) << self._line_shift,
                victim_dirty,
            )
        cache_set[tag] = _DIRTY if dirty else _CLEAN
        return victim

    def clean_line(self, address: int) -> bool:
        """Write back a line in place (clwb semantics).

        Returns ``True`` if the line was present and dirty (so a
        writeback toward memory is needed).  The line stays resident in
        CLEAN state, exactly like ``clwb``.
        """
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        state = cache_set.get(tag)
        if state is None:
            return False
        cache_set[tag] = _CLEAN
        return state == _DIRTY

    def invalidate_line(self, address: int) -> Optional[EvictedLine]:
        """Drop a line (clflush semantics); returns it if it was dirty."""
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        state = cache_set.pop(tag, None)
        if state is None:
            return None
        dirty = state == _DIRTY
        if dirty:
            self.dirty_evictions += 1
        return EvictedLine(self.line_address(address), dirty)

    def contains(self, address: int) -> bool:
        line = address >> self._line_shift
        return (line // self._num_sets) in self._sets[line % self._num_sets]

    def resident_lines(self) -> Iterator[Tuple[int, CacheLineState]]:
        """Iterate (line_address, state) over all resident lines."""
        for index, cache_set in enumerate(self._sets):
            for tag, state in cache_set.items():
                yield (
                    (tag * self._num_sets + index) << self._line_shift,
                    _STATE_ENUM[state],
                )

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "dirty_evictions": self.dirty_evictions,
            "occupancy": self.occupancy,
        }
