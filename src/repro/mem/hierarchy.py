"""The L1/L2/LLC write-back hierarchy in front of the memory controller.

The hierarchy is mostly-inclusive and write-allocate.  It resolves each
core reference to a latency plus the set of dirty lines it pushed out
of the LLC (which become write requests at the memory controller), and
implements the persist primitives:

* ``clwb(addr)`` — write a dirty line back toward memory, keeping it
  resident clean; produces a write request if the line was dirty
  anywhere in the hierarchy.
* ``clflush(addr)`` — same, but invalidates.

Persist *completion* (what ``sfence`` waits on) is owned by the memory
controller — the hierarchy only reports when the writeback *leaves* the
LLC for the controller.

Hot path: when all three levels share one line size (every shipped
config) the access/fill/victim-cascade sequence runs on the caches'
set dictionaries directly — one line-number computation and no
per-level method calls.  Exotic mixed-line-size configs fall back to
the generic per-cache API; both paths are semantically identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SimConfig
from repro.mem.cache import EvictedLine, SetAssociativeCache


@dataclass(slots=True)
class AccessResult:
    """Outcome of one core reference through the hierarchy."""

    #: Cycles until the datum is available to the core (hierarchy
    #: traversal only; the controller adds memory time on a miss).
    latency: int
    #: True if the reference missed all levels and needs memory.
    needs_memory: bool
    #: Dirty lines evicted from the LLC by fills along the way; each
    #: becomes an (unordered, non-persist) write at the controller.
    writebacks: List[int] = field(default_factory=list)


class CacheHierarchy:
    """Three-level write-back hierarchy (Table 1 geometry)."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.llc = SetAssociativeCache(config.llc)
        self._levels = [self.l1, self.l2, self.llc]
        # Cumulative traversal latency down to each level (and through
        # all of them on a full miss) — computed once, not per access.
        lat1 = config.l1.latency
        lat2 = lat1 + config.l2.latency
        lat3 = lat2 + config.llc.latency
        self._cum_latency = (lat1, lat2, lat3)
        # Fused fast path needs one shared line-number space.
        shifts = {c._line_shift for c in self._levels}
        self._uniform_lines = len(shifts) == 1
        self._line_shift = self._levels[0]._line_shift
        #: Per-level hot-state handles: (cache, sets, num_sets, assoc).
        self._hot = [
            (c, c._sets, c._num_sets, c._assoc) for c in self._levels
        ]
        self.flush_hits_dirty = 0
        self.flush_misses = 0

    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool) -> AccessResult:
        """Simulate a load/store at ``address`` (any byte address)."""
        if not self._uniform_lines:
            return self._access_generic(address, is_write)
        line = address >> self._line_shift
        hot = self._hot

        # Fast path: an L1 hit fills nothing and evicts nothing, which
        # is the overwhelming majority of references in the workloads.
        l1, l1_sets, l1_ns, _ = hot[0]
        set1 = l1_sets[line % l1_ns]
        tag1 = line // l1_ns
        state = set1.get(tag1)
        if state is not None:
            l1.hits += 1
            del set1[tag1]
            set1[tag1] = 1 if is_write else state
            return AccessResult(self._cum_latency[0], needs_memory=False)
        l1.misses += 1

        writebacks: List[int] = []
        l2, l2_sets, l2_ns, _ = hot[1]
        set2 = l2_sets[line % l2_ns]
        tag2 = line // l2_ns
        state = set2.get(tag2)
        if state is not None:
            l2.hits += 1
            del set2[tag2]
            set2[tag2] = 1 if is_write else state
            self._fill(line, 1, is_write, writebacks)
            return AccessResult(
                self._cum_latency[1], needs_memory=False, writebacks=writebacks
            )
        l2.misses += 1

        llc, llc_sets, llc_ns, _ = hot[2]
        set3 = llc_sets[line % llc_ns]
        tag3 = line // llc_ns
        state = set3.get(tag3)
        if state is not None:
            llc.hits += 1
            del set3[tag3]
            set3[tag3] = 1 if is_write else state
            self._fill(line, 2, is_write, writebacks)
            return AccessResult(
                self._cum_latency[2], needs_memory=False, writebacks=writebacks
            )
        llc.misses += 1

        # Missed everywhere: fill the whole path from memory.
        self._fill(line, 3, is_write, writebacks)
        return AccessResult(
            self._cum_latency[2], needs_memory=True, writebacks=writebacks
        )

    def _fill(
        self,
        line: int,
        below_depth: int,
        is_write: bool,
        writebacks: List[int],
    ) -> None:
        """Fused fill of every level above ``below_depth``.

        Semantically identical to the generic ``insert`` +
        victim-cascade sequence: levels fill deepest-first, each fill's
        *dirty* victim is pushed down level by level, and a dirty
        victim leaving the LLC lands in ``writebacks``.
        """
        hot = self._hot
        line_shift = self._line_shift
        for depth in range(below_depth - 1, -1, -1):
            cache, sets, num_sets, assoc = hot[depth]
            cache_set = sets[line % num_sets]
            tag = line // num_sets
            fill_state = 1 if (is_write and depth == 0) else 0
            state = cache_set.get(tag)
            if state is not None:
                # Upgrade in place; never downgrade dirty -> clean.
                del cache_set[tag]
                cache_set[tag] = 1 if fill_state else state
                continue
            victim_line = None
            if len(cache_set) >= assoc:
                victim_tag = next(iter(cache_set))
                if cache_set.pop(victim_tag):
                    cache.dirty_evictions += 1
                    victim_line = victim_tag * num_sets + (line % num_sets)
            cache_set[tag] = fill_state
            # Cascade the dirty victim downward (clean victims drop).
            level = depth
            while victim_line is not None:
                level += 1
                if level >= 3:
                    writebacks.append(victim_line << line_shift)
                    break
                vcache, vsets, vns, vassoc = hot[level]
                vset = vsets[victim_line % vns]
                vtag = victim_line // vns
                vstate = vset.get(vtag)
                if vstate is not None:
                    del vset[vtag]
                    vset[vtag] = 1
                    break
                next_victim = None
                if len(vset) >= vassoc:
                    wtag = next(iter(vset))
                    if vset.pop(wtag):
                        vcache.dirty_evictions += 1
                        next_victim = wtag * vns + (victim_line % vns)
                vset[vtag] = 1
                victim_line = next_victim

    # -- generic (mixed line sizes) fallback ---------------------------
    def _access_generic(self, address: int, is_write: bool) -> AccessResult:
        address = self.l1.line_address(address)
        if self.l1.access(address, is_write):
            return AccessResult(self._cum_latency[0], needs_memory=False)
        writebacks: List[int] = []
        if self.l2.access(address, is_write):
            self._fill_upper(address, 1, is_write, writebacks)
            return AccessResult(
                self._cum_latency[1], needs_memory=False, writebacks=writebacks
            )
        if self.llc.access(address, is_write):
            self._fill_upper(address, 2, is_write, writebacks)
            return AccessResult(
                self._cum_latency[2], needs_memory=False, writebacks=writebacks
            )
        self._fill_upper(address, 3, is_write, writebacks)
        return AccessResult(
            self._cum_latency[2], needs_memory=True, writebacks=writebacks
        )

    def _fill_upper(
        self,
        address: int,
        below_depth: int,
        is_write: bool,
        writebacks: List[int],
    ) -> None:
        """Insert the line into every level above ``below_depth``.

        Victims cascade downward; a dirty victim leaving the LLC lands
        in ``writebacks`` as a memory write request.
        """
        for depth in range(below_depth - 1, -1, -1):
            victim = self._levels[depth].insert(
                address, dirty=is_write and depth == 0
            )
            self._push_victim(victim, depth, writebacks)

    def _push_victim(
        self,
        victim: Optional[EvictedLine],
        from_depth: int,
        writebacks: List[int],
    ) -> None:
        while victim is not None and victim.dirty:
            next_depth = from_depth + 1
            if next_depth >= len(self._levels):
                writebacks.append(victim.address)
                return
            victim = self._levels[next_depth].insert(victim.address, dirty=True)
            from_depth = next_depth

    # ------------------------------------------------------------------
    # Persist primitives
    # ------------------------------------------------------------------
    def clwb(self, address: int) -> Optional[int]:
        """Write back ``address`` if dirty; return the line address to
        persist or ``None`` if it was clean/absent everywhere."""
        if not self._uniform_lines:
            return self._clwb_generic(address)
        line = address >> self._line_shift
        dirty = False
        for _cache, sets, num_sets, _assoc in self._hot:
            cache_set = sets[line % num_sets]
            tag = line // num_sets
            state = cache_set.get(tag)
            if state is not None:
                # In-place downgrade keeps LRU position, exactly like
                # SetAssociativeCache.clean_line.
                cache_set[tag] = 0
                if state:
                    dirty = True
        if dirty:
            self.flush_hits_dirty += 1
            return line << self._line_shift
        self.flush_misses += 1
        return None

    def _clwb_generic(self, address: int) -> Optional[int]:
        address = self.l1.line_address(address)
        dirty = False
        for cache in self._levels:
            if cache.clean_line(address):
                dirty = True
        if dirty:
            self.flush_hits_dirty += 1
            return address
        self.flush_misses += 1
        return None

    def clflush(self, address: int) -> Optional[int]:
        """Invalidate ``address`` everywhere; return it if it was dirty."""
        address = self.l1.line_address(address)
        dirty = False
        for cache in self._levels:
            victim = cache.invalidate_line(address)
            if victim is not None and victim.dirty:
                dirty = True
        if dirty:
            self.flush_hits_dirty += 1
            return address
        self.flush_misses += 1
        return None

    def flush_latency(self) -> int:
        """Cycles for a flush to traverse the hierarchy to the controller."""
        return sum(c.config.latency for c in self._levels)

    def dirty_lines(self) -> List[int]:
        """All lines dirty anywhere in the hierarchy (crash-test oracle)."""
        dirty = set()
        for cache in self._levels:
            for line, state in cache.resident_lines():
                if state.value == "dirty":
                    dirty.add(line)
        return sorted(dirty)
