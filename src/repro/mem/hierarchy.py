"""The L1/L2/LLC write-back hierarchy in front of the memory controller.

The hierarchy is mostly-inclusive and write-allocate.  It resolves each
core reference to a latency plus the set of dirty lines it pushed out
of the LLC (which become write requests at the memory controller), and
implements the persist primitives:

* ``clwb(addr)`` — write a dirty line back toward memory, keeping it
  resident clean; produces a write request if the line was dirty
  anywhere in the hierarchy.
* ``clflush(addr)`` — same, but invalidates.

Persist *completion* (what ``sfence`` waits on) is owned by the memory
controller — the hierarchy only reports when the writeback *leaves* the
LLC for the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SimConfig
from repro.mem.cache import EvictedLine, SetAssociativeCache


@dataclass
class AccessResult:
    """Outcome of one core reference through the hierarchy."""

    #: Cycles until the datum is available to the core (hierarchy
    #: traversal only; the controller adds memory time on a miss).
    latency: int
    #: True if the reference missed all levels and needs memory.
    needs_memory: bool
    #: Dirty lines evicted from the LLC by fills along the way; each
    #: becomes an (unordered, non-persist) write at the controller.
    writebacks: List[int] = field(default_factory=list)


class CacheHierarchy:
    """Three-level write-back hierarchy (Table 1 geometry)."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.llc = SetAssociativeCache(config.llc)
        self._levels = [self.l1, self.l2, self.llc]
        self.flush_hits_dirty = 0
        self.flush_misses = 0

    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool) -> AccessResult:
        """Simulate a load/store at ``address`` (any byte address)."""
        address = self.l1.line_address(address)
        writebacks: List[int] = []
        latency = 0

        # Walk down the levels looking for a hit.
        for depth, cache in enumerate(self._levels):
            latency += cache.config.latency
            if cache.access(address, is_write):
                self._fill_upper(address, depth, is_write, writebacks)
                return AccessResult(latency, needs_memory=False, writebacks=writebacks)

        # Missed everywhere: fill the whole path from memory.
        self._fill_upper(address, len(self._levels), is_write, writebacks)
        return AccessResult(latency, needs_memory=True, writebacks=writebacks)

    def _fill_upper(
        self,
        address: int,
        below_depth: int,
        is_write: bool,
        writebacks: List[int],
    ) -> None:
        """Insert the line into every level above ``below_depth``.

        Victims cascade downward; a dirty victim leaving the LLC lands
        in ``writebacks`` as a memory write request.
        """
        for depth in range(below_depth - 1, -1, -1):
            victim = self._levels[depth].insert(
                address, dirty=is_write and depth == 0
            )
            self._push_victim(victim, depth, writebacks)

    def _push_victim(
        self,
        victim: Optional[EvictedLine],
        from_depth: int,
        writebacks: List[int],
    ) -> None:
        while victim is not None and victim.dirty:
            next_depth = from_depth + 1
            if next_depth >= len(self._levels):
                writebacks.append(victim.address)
                return
            victim = self._levels[next_depth].insert(victim.address, dirty=True)
            from_depth = next_depth

    # ------------------------------------------------------------------
    # Persist primitives
    # ------------------------------------------------------------------
    def clwb(self, address: int) -> Optional[int]:
        """Write back ``address`` if dirty; return the line address to
        persist or ``None`` if it was clean/absent everywhere."""
        address = self.l1.line_address(address)
        dirty = False
        for cache in self._levels:
            if cache.clean_line(address):
                dirty = True
        if dirty:
            self.flush_hits_dirty += 1
            return address
        self.flush_misses += 1
        return None

    def clflush(self, address: int) -> Optional[int]:
        """Invalidate ``address`` everywhere; return it if it was dirty."""
        address = self.l1.line_address(address)
        dirty = False
        for cache in self._levels:
            victim = cache.invalidate_line(address)
            if victim is not None and victim.dirty:
                dirty = True
        if dirty:
            self.flush_hits_dirty += 1
            return address
        self.flush_misses += 1
        return None

    def flush_latency(self) -> int:
        """Cycles for a flush to traverse the hierarchy to the controller."""
        return sum(c.config.latency for c in self._levels)

    def dirty_lines(self) -> List[int]:
        """All lines dirty anywhere in the hierarchy (crash-test oracle)."""
        dirty = set()
        for cache in self._levels:
            for line, state in cache.resident_lines():
                if state.value == "dirty":
                    dirty.add(line)
        return sorted(dirty)
