"""Memory devices: caches, the cache hierarchy, and the NVM module.

These are the non-secure substrates the paper's gem5 setup provides:
an L1/L2/LLC write-back hierarchy in front of the memory controller
and a PCM-like NVM device behind it (Table 1 timings).
"""

from repro.mem.cache import CacheLineState, EvictedLine, SetAssociativeCache
from repro.mem.hierarchy import AccessResult, CacheHierarchy
from repro.mem.nvm import NVMDevice

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "CacheLineState",
    "EvictedLine",
    "NVMDevice",
    "SetAssociativeCache",
]
