"""The shared controller-design matrix.

Single source of truth for the (label -> :class:`~repro.config.SimConfig`)
registry that the oracle checker, fault campaign, trace tooling, golden
suite, fleet dispatcher, experiment service, Makefile targets and CI jobs
all sweep.  Adding a design here is the *only* step needed for it to flow
through every harness entry point.

The first six labels are the legacy Figure 5 design space and their
order is stable (CLI defaults and golden metrics key off it); new
designs are appended after them.

``python -m repro.matrix --group <name>`` prints a comma-joined label
list so shell tooling (Makefile, CI) can iterate the registry instead of
hard-coding design lists.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.config import (
    ControllerKind,
    MiSUDesign,
    SimConfig,
    lazy_config,
    triad_config,
    writethrough_config,
)


def controller_matrix() -> Dict[str, SimConfig]:
    """The eight controller configurations the harnesses sweep.

    Six legacy Figure 5 designs first (stable order), then the two
    designs added on top of the paper's matrix: Triad-NVM (Awad et al.)
    and the SuperMem-style write-through secure counter design
    (Zuo/Hua/Xie, arXiv 1901.00620).
    """
    return {
        "dolos-full": SimConfig().with_(misu_design=MiSUDesign.FULL_WPQ),
        "dolos-partial": SimConfig().with_(misu_design=MiSUDesign.PARTIAL_WPQ),
        "dolos-post": SimConfig().with_(misu_design=MiSUDesign.POST_WPQ),
        "prewpq-eager": SimConfig().with_(
            controller=ControllerKind.PRE_WPQ_SECURE
        ),
        "prewpq-lazy": lazy_config(controller=ControllerKind.PRE_WPQ_SECURE),
        "eadr": SimConfig().with_(controller=ControllerKind.EADR_SECURE),
        "triad": triad_config(),
        "writethrough": writethrough_config(),
    }


#: Stable label tuple (CLI default order).
CONTROLLER_MATRIX = tuple(controller_matrix())

#: The six pre-refactor designs whose metrics are bit-pinned.
LEGACY_MATRIX = CONTROLLER_MATRIX[:6]

#: Designs added after the Figure 5 space.
NEW_MATRIX = CONTROLLER_MATRIX[6:]

#: Named label groups for shell tooling (Makefile / CI).
MATRIX_GROUPS: Dict[str, tuple] = {
    "all": CONTROLLER_MATRIX,
    "legacy": LEGACY_MATRIX,
    "new": NEW_MATRIX,
    # Quick cross-section: one Dolos design, one baseline, the battery
    # design, and both new designs.
    "smoke": ("dolos-partial", "prewpq-eager", "eadr") + NEW_MATRIX,
    # Minimal two-design pair for the cheapest smoke targets.
    "pair": ("dolos-partial", "prewpq-eager"),
}


def matrix_labels(group: str = "all") -> List[str]:
    """Resolve a named group to its label list."""
    try:
        return list(MATRIX_GROUPS[group])
    except KeyError:
        raise KeyError(
            f"unknown matrix group {group!r}; choose from "
            f"{sorted(MATRIX_GROUPS)}"
        ) from None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="harness matrix",
        description="Print controller-matrix labels for shell tooling.",
    )
    parser.add_argument(
        "--group", default="all", choices=sorted(MATRIX_GROUPS),
        help="named label group (default: all)",
    )
    parser.add_argument(
        "--sep", default=",", help="label separator (default: ',')",
    )
    args = parser.parse_args(argv)
    print(args.sep.join(matrix_labels(args.group)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
