"""Property-based tests (hypothesis) for core data structures and
crypto invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.counters import COUNTERS_PER_BLOCK, CounterBlock
from repro.crypto.mac import mac_over_fields
from repro.crypto.prf import ctr_pad, xor_bytes
from repro.engine.resources import PipelineLane
from repro.mem.cache import SetAssociativeCache
from repro.config import CacheConfig
from repro.persistence.heap import PersistentHeap
from repro.persistence.recorder import lines_spanned
from repro.security.merkle import MerkleTree
from repro.wpq.queue import WritePendingQueue
from repro.core.requests import WriteKind, WriteRequest

KEY = b"\x09" * 32

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)
counters = st.integers(min_value=0, max_value=(1 << 50) - 1)
payloads = st.binary(min_size=64, max_size=64)


class TestCryptoProperties:
    @given(addresses, counters, payloads)
    @settings(max_examples=50, deadline=None)
    def test_ctr_roundtrip(self, address, counter, plaintext):
        pad = ctr_pad(KEY, address, counter, 64)
        assert xor_bytes(xor_bytes(plaintext, pad), pad) == plaintext

    @given(addresses, addresses, counters)
    @settings(max_examples=50, deadline=None)
    def test_pads_unique_per_line(self, a, b, counter):
        # Pads are per 64-byte line: distinct lines -> distinct pads.
        if a >> 6 != b >> 6:
            assert ctr_pad(KEY, a, counter) != ctr_pad(KEY, b, counter)

    @given(
        st.lists(
            st.one_of(st.integers(-(2**40), 2**40), st.binary(max_size=32)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mac_deterministic(self, fields):
        assert mac_over_fields(KEY, *fields) == mac_over_fields(KEY, *fields)


class TestCounterBlockProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=COUNTERS_PER_BLOCK - 1),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, increments):
        block = CounterBlock()
        for line in increments:
            block.increment(line)
        clone = CounterBlock.decode(block.encode())
        assert clone.major == block.major
        assert clone.minors == block.minors

    @given(
        st.lists(
            st.integers(min_value=0, max_value=COUNTERS_PER_BLOCK - 1),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_counter_values_never_repeat_per_line(self, increments):
        """The IV-uniqueness invariant: per line, successive counter
        values are strictly increasing (no pad reuse)."""
        block = CounterBlock()
        seen = {line: {0} for line in range(COUNTERS_PER_BLOCK)}
        for line in increments:
            counter, overflowed = block.increment(line)
            if overflowed:
                # All minors reset under a new major: values still fresh.
                seen = {l: set() for l in range(COUNTERS_PER_BLOCK)}
            assert counter.value not in seen[line]
            seen[line].add(counter.value)


class TestMerkleProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=511),
            st.binary(min_size=1, max_size=16),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_incremental_equals_rebuild(self, leaves):
        tree = MerkleTree(KEY, 512)
        for index, content in leaves.items():
            tree.update_leaf(index, content)
        fresh = MerkleTree(KEY, 512)
        assert fresh.rebuild_from_leaves(leaves) == tree.root

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=511),
            st.binary(min_size=1, max_size=16),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_all_leaves_verify(self, leaves):
        tree = MerkleTree(KEY, 512)
        for index, content in leaves.items():
            tree.update_leaf(index, content)
        for index, content in leaves.items():
            assert tree.verify_leaf(index, content)


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, refs):
        cache = SetAssociativeCache(CacheConfig("p", 8 * 64, 2, 1))
        for line, is_write in refs:
            address = line * 64
            if not cache.access(address, is_write):
                cache.insert(address, dirty=is_write)
            assert cache.occupancy <= cache.config.num_lines

    @given(
        st.lists(
            st.integers(min_value=0, max_value=63),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_inserted_line_is_resident(self, lines):
        cache = SetAssociativeCache(CacheConfig("p", 16 * 64, 4, 1))
        for line in lines:
            cache.insert(line * 64, dirty=False)
            assert cache.contains(line * 64)


class TestWPQProperties:
    @given(
        st.lists(
            st.sampled_from(["alloc", "drain"]),
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, ops):
        wpq = WritePendingQueue(4)
        next_addr = 0
        for op in ops:
            if op == "alloc":
                wpq.try_allocate(
                    WriteRequest(next_addr, WriteKind.PERSIST)
                )
                next_addr += 64
            else:
                entry = wpq.oldest_pending()
                if entry is not None:
                    wpq.begin_fetch(entry)
                    wpq.mark_cleared(entry)
            assert 0 <= wpq.occupancy <= wpq.capacity


class TestHeapProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=50)
    )
    @settings(max_examples=30, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        heap = PersistentHeap()
        spans = []
        for size in sizes:
            address = heap.alloc(size)
            for start, end in spans:
                assert address + size <= start or address >= end
            spans.append((address, address + size))


class TestMiscProperties:
    @given(addresses, st.integers(min_value=1, max_value=4096))
    @settings(max_examples=50, deadline=None)
    def test_lines_spanned_covers_range(self, address, size):
        lines = lines_spanned(address, size)
        assert lines[0] <= address
        assert lines[-1] + 64 >= address + size
        assert all(b - a == 64 for a, b in zip(lines, lines[1:]))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10000),
                st.integers(min_value=0, max_value=500),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_pipeline_lane_starts_monotonic(self, bookings):
        lane = PipelineLane(7)
        previous_start = -1
        now = 0
        for advance, latency in bookings:
            now += advance
            start, done = lane.book(now, latency)
            assert start >= previous_start + lane.interval or previous_start == -1
            assert start >= now
            assert done == start + latency
            previous_start = start
