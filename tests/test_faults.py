"""Fault-injection campaign: detection matrix, salvage, plan plumbing.

The acceptance bar from the robustness PR:

* corruption of security metadata (encryption counters, BMT/ToC nodes,
  data MACs, drained-WPQ records and their MACs) is never *silent* on
  any of the six oracle controller configs — and the MAC-protected
  drained-image kinds are always positively *detected*;
* a truncated or structurally inconsistent drained image raises the
  typed :class:`ImageMalformed` (with slot attribution);
* a degraded ADR budget forces a partial drain whose recovery salvages
  every fully-drained live slot and enumerates every lost one
  (:class:`SlotsLost` in strict mode);
* plans are seeded, serializable and deterministic.
"""

import pytest

from repro.config import ControllerKind
from repro.faults import ALL_KINDS, FaultInjector, FaultPlan, FaultSpec, apply_spec
from repro.faults.campaign import (
    DETECTED,
    SILENT,
    TOLERATED,
    classify_recovery,
    inject_and_classify,
    run_campaign,
    run_fault_unit,
)
from repro.oracle.check import controller_matrix, select_sites
from repro.oracle.driver import OracleExecution
from repro.oracle.golden import prefix_states
from repro.oracle.ops import generate_ops
from repro.oracle.sites import enumerate_sites
from repro.recovery.crash import crash_system
from repro.recovery.errors import ImageMalformed, SlotsLost, TamperDetected
from repro.recovery.recover import recover_system
from repro.wpq.adr import ADRDrain, WPQ_IMAGE_REGION
from repro.workloads import ORACLE_SEMANTICS

WORKLOAD = "hashmap"
TXNS = 12
SEED = 0

MATRIX = controller_matrix()

#: Fault kinds whose detection is unconditional: they corrupt bytes
#: that a MAC / structural check *always* covers on every config that
#: can take them (the plan generator only draws applicable kinds).
ALWAYS_DETECTED_KINDS = {
    "wpq-record-flip",
    "wpq-mac-flip",
    "wpq-truncate",
    "wpq-reorder",
}


def _crash_at_interior_site(label, occupied_min=0, crash=True):
    """Crash the ``label`` config at an interior oracle site.

    Returns ``(execution, image, ops, states)``.  With ``occupied_min``
    set, prefers the first interior site whose live WPQ holds at least
    that many occupied entries (partial-drain tests need real losses).
    With ``crash=False`` the machine is left running (``image`` is
    ``None``) so the caller can crash it with an injector attached — a
    drain is one-shot, so the helper must not consume it first.
    """
    config = MATRIX[label]
    ops = generate_ops(WORKLOAD, TXNS, SEED)
    states = prefix_states(ORACLE_SEMANTICS[WORKLOAD], ops)
    battery = config.controller is ControllerKind.EADR_SECURE
    sites = select_sites(enumerate_sites(config, ops).sites, 8)[1:-1]
    chosen = None
    for site in sites:
        execution = OracleExecution(config, ops)
        execution.run(until=site.cycle)
        occupied = sum(1 for e in execution.controller.wpq.entries if e.occupied)
        if chosen is None or occupied >= occupied_min:
            chosen = execution
        if occupied >= occupied_min:
            break
    image = crash_system(chosen.controller, battery=battery) if crash else None
    return chosen, image, ops, states


@pytest.fixture(scope="module")
def site_cache():
    """Per-module cache of crash images: one oracle run per config."""
    cache = {}

    def get(label):
        if label not in cache:
            cache[label] = _crash_at_interior_site(label)
        return cache[label]

    return get


class TestDetectionMatrix:
    @pytest.mark.parametrize("label", sorted(MATRIX))
    def test_no_silent_corruption_across_plan(self, label, site_cache):
        """Every applicable catalogue fault is detected or tolerated —
        never silent — on every matrix controller config."""
        execution, image, ops, states = site_cache(label)
        plan = FaultPlan.generate(SEED, image)
        assert plan.faults, "plan generated no faults at a live site"
        seen = set()
        for spec in plan.faults:
            if spec.kind == "adr-degrade":
                continue
            result = inject_and_classify(
                image, spec, execution.commits_fired, ops, states, seed=SEED
            )
            assert result is not None, f"{spec.describe()} had no target"
            outcome, detail, _ = result
            assert outcome != SILENT, f"{spec.describe()} was SILENT: {detail}"
            if spec.kind in ALWAYS_DETECTED_KINDS:
                assert outcome == DETECTED, (
                    f"{spec.describe()} must be detected, got {outcome}: "
                    f"{detail}"
                )
            seen.add(spec.kind)
        # The matrix is only meaningful if real corruption was planted
        # (which metadata is populated varies per config and site).
        assert seen - {"cache-parity"}

    @pytest.mark.parametrize("label", sorted(MATRIX))
    def test_unit_campaign_passes(self, label):
        """`run_fault_unit` (baseline check + plan + degraded drain)
        reports zero silent faults and a clean baseline per config."""
        unit = run_fault_unit(
            WORKLOAD, label, MATRIX[label], TXNS, seed=SEED, sites=1
        )
        assert unit.failures == []
        assert unit.count(SILENT) == 0
        assert unit.outcomes, "campaign injected nothing"
        assert unit.passed

    def test_clean_baseline_is_tolerated(self, site_cache):
        execution, image, ops, states = site_cache("dolos-full")
        outcome, detail = classify_recovery(
            image.clone(),
            FaultInjector(FaultPlan(SEED)),
            execution.commits_fired,
            ops,
            states,
        )
        assert outcome == TOLERATED, detail


class TestTypedImageErrors:
    """Structural drained-image damage raises ImageMalformed."""

    def _drained_image(self, label="dolos-partial"):
        _, image, _, _ = _crash_at_interior_site(label)
        slots = sorted(image.nvm.region(WPQ_IMAGE_REGION))
        assert slots, "crash site drained no WPQ records"
        return image, slots

    def test_truncated_image_detected(self):
        image, slots = self._drained_image()
        spec = FaultSpec("wpq-truncate", region=WPQ_IMAGE_REGION, target=slots[0])
        assert apply_spec(image.nvm, spec)
        with pytest.raises(ImageMalformed):
            recover_system(image)

    def test_truncated_record_bytes_detected_with_slot(self):
        image, slots = self._drained_image()
        region = image.nvm.region(WPQ_IMAGE_REGION)
        region[slots[0]] = region[slots[0]][:10]  # shorter than the header
        with pytest.raises(ImageMalformed) as excinfo:
            recover_system(image)
        assert excinfo.value.slot == slots[0]

    def test_meta_drop_with_records_detected(self):
        image, _ = self._drained_image()
        spec = FaultSpec("wpq-meta-drop", region="wpq_image_meta", target=0)
        assert apply_spec(image.nvm, spec)
        with pytest.raises(ImageMalformed):
            recover_system(image)

    def test_cleared_flag_flip_detected(self):
        """Regression: the cleared flag is in the entry-MAC domain.

        Flipping it (bit 128 = first bit of the cleared byte) would
        silently drop a committed write at replay if the MAC did not
        cover it."""
        image, slots = self._drained_image()
        assert image.nvm.corrupt_region_entry(WPQ_IMAGE_REGION, slots[0], 128)
        with pytest.raises(TamperDetected):
            recover_system(image)

    def test_reorder_detected(self):
        image, slots = self._drained_image()
        if len(slots) < 2:
            pytest.skip("need two drained records to reorder")
        spec = FaultSpec(
            "wpq-reorder",
            region=WPQ_IMAGE_REGION,
            target=slots[0],
            aux=slots[1],
        )
        assert apply_spec(image.nvm, spec)
        with pytest.raises(TamperDetected):
            recover_system(image)


class TestDegradedDrainSalvage:
    def test_partial_drain_salvages_and_enumerates(self):
        execution, _, ops, states = _crash_at_interior_site(
            "dolos-partial", occupied_min=2, crash=False
        )
        controller = execution.controller
        drain = controller.adr_drain
        needed = drain.energy_needed(controller.wpq, 0)
        assert needed >= 2, "site carries no drainable WPQ state"

        spec = FaultSpec("adr-degrade", aux=max(1, needed // 2))
        injector = FaultInjector(FaultPlan(seed=SEED, faults=(spec,)))
        image = crash_system(controller, injector=injector)
        assert drain.partial_drains == 1
        assert any(site == "adr.budget" for site, _ in injector.notes)

        # Census of what actually landed, before recovery touches it.
        census = ADRDrain(image.nvm, image.config.adr, image.config.misu_design)
        meta = census.read_meta()
        assert meta is not None and meta.partial
        records = census.read_image()
        present = {record.slot for record in records}
        salvaged_live = sum(1 for record in records if not record.cleared)
        expected_lost = [s for s in meta.occupied_slots() if s not in present]

        report = recover_system(image.clone())
        assert report.partial_drain
        assert sorted(report.slots_lost) == sorted(expected_lost)
        assert report.wpq_entries_recovered == salvaged_live

        if expected_lost:
            with pytest.raises(SlotsLost) as excinfo:
                recover_system(image.clone(), strict_slots=True)
            assert sorted(excinfo.value.slots) == sorted(expected_lost)

        outcome, detail = classify_recovery(
            image,
            injector,
            execution.commits_fired,
            ops,
            states,
            loss_expected=(expected_lost, salvaged_live),
        )
        assert outcome in (DETECTED, TOLERATED), detail


class TestPlanPlumbing:
    def test_plan_json_roundtrip(self, site_cache):
        _, image, _, _ = site_cache("dolos-full")
        plan = FaultPlan.generate(SEED, image, degraded_budget=3)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_spec_dict_roundtrip(self):
        spec = FaultSpec("wpq-reorder", region="wpq_image", target=3, aux=5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_plan_deterministic_per_seed(self, site_cache):
        _, image, _, _ = site_cache("dolos-full")
        assert FaultPlan.generate(7, image) == FaultPlan.generate(7, image)

    def test_plan_kinds_are_catalogued(self, site_cache):
        _, image, _, _ = site_cache("dolos-full")
        plan = FaultPlan.generate(SEED, image)
        assert {spec.kind for spec in plan.faults} <= set(ALL_KINDS)

    def test_prewpq_plan_has_no_wpq_faults(self, site_cache):
        """PreWPQ configs drain no image; WPQ kinds must not be drawn."""
        _, image, _, _ = site_cache("prewpq-eager")
        plan = FaultPlan.generate(SEED, image)
        assert not any(spec.kind.startswith("wpq-") for spec in plan.faults)

    def test_injector_parity_is_one_shot(self):
        spec = FaultSpec("cache-parity", region="counter$")
        injector = FaultInjector(FaultPlan(seed=0, faults=(spec,)))
        assert injector.cache_parity_fault("counter$", 0x40)
        assert not injector.cache_parity_fault("counter$", 0x80)
        assert not injector.cache_parity_fault("mt$", 0x40)
        assert injector.notes and injector.notes[0][0] == "cache.parity"

    def test_injector_budget_degradation_logged(self):
        spec = FaultSpec("adr-degrade", aux=2)
        injector = FaultInjector(FaultPlan(seed=0, faults=(spec,)))
        assert injector.adr_budget(10) == 2
        assert injector.adr_budget(1) == 1  # never raises the budget
        assert ("adr.budget", "degraded 10 -> 2") in injector.notes

    def test_cache_parity_fault_is_tolerated(self, site_cache):
        """A one-shot metadata-cache parity hit refetches from NVM: the
        recovered state still matches the golden model."""
        execution, image, ops, states = site_cache("dolos-full")
        spec = FaultSpec("cache-parity", region="counter$")
        result = inject_and_classify(
            image, spec, execution.commits_fired, ops, states, seed=SEED
        )
        assert result is not None
        outcome, detail, _ = result
        assert outcome == TOLERATED, detail


class TestCampaignDriver:
    def test_small_campaign_passes_with_json_report(self):
        report = run_campaign(
            [WORKLOAD],
            controllers=["dolos-full", "eadr"],
            transactions=TXNS,
            seed=SEED,
            sites=1,
            jobs=1,
        )
        assert report.passed
        totals = report.totals()
        assert totals[SILENT] == 0
        assert totals[DETECTED] + totals[TOLERATED] > 0

        import json

        payload = json.loads(report.to_json())
        assert payload["passed"] is True
        assert payload["totals"]["silent"] == 0
        assert len(payload["units"]) == 2

    def test_unknown_controller_rejected(self):
        with pytest.raises(KeyError):
            run_campaign([WORKLOAD], controllers=["nonesuch"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_campaign(["nonesuch"], controllers=["dolos-full"])
