"""Tests for the threat-model attacks (Section 4.1/4.6): every attack
in scope must be *detected*."""

import pytest

from repro.config import MiSUDesign, SimConfig
from repro.attacks import (
    CounterRollbackAttack,
    DataRelocationAttack,
    DataReplayAttack,
    DataSpoofAttack,
    MACForgeAttack,
    WPQImageRelocationAttack,
    WPQImageReplayAttack,
    WPQImageSpoofAttack,
    run_read_attack,
    run_wpq_attack,
)
from repro.core.controller import DolosController
from repro.core.masu import MajorSecurityUnit
from repro.core.registers import PersistentRegisters
from repro.core.requests import WriteKind, WriteRequest
from repro.crypto.keys import KeyStore
from repro.engine import Simulator
from repro.mem.nvm import NVMDevice
from repro.recovery.crash import crash_system
from repro.wpq.adr import WPQ_IMAGE_REGION, WPQ_MAC_REGION

HEAP = 0x1_0000_0000


@pytest.fixture
def masu(line_factory):
    config = SimConfig()
    unit = MajorSecurityUnit(
        config, KeyStore(3), PersistentRegisters(), NVMDevice(config.nvm)
    )
    for i in range(4):
        unit.secure_write(HEAP + i * 64, line_factory(f"v{i}"))
    return unit


def crashed_image(line_factory, design=MiSUDesign.PARTIAL_WPQ, writes=8):
    config = SimConfig().with_(misu_design=design)
    sim = Simulator()
    controller = DolosController(sim, config)
    controller.start()
    for i in range(writes):
        controller.submit_write(
            WriteRequest(HEAP + i * 64, WriteKind.PERSIST, data=line_factory(str(i)))
        )
    sim.run(until=1500)  # most writes still in the WPQ
    return crash_system(controller)


class TestRuntimeDataAttacks:
    def test_spoof_detected(self, masu):
        outcome = run_read_attack(masu, DataSpoofAttack(HEAP), HEAP)
        assert outcome.detected

    def test_mac_forge_detected(self, masu):
        outcome = run_read_attack(masu, MACForgeAttack(HEAP), HEAP)
        assert outcome.detected

    def test_relocation_detected(self, masu):
        attack = DataRelocationAttack(source=HEAP, target=HEAP + 64)
        outcome = run_read_attack(masu, attack, HEAP + 64)
        assert outcome.detected

    def test_replay_detected(self, masu, line_factory):
        attack = DataReplayAttack(HEAP)
        attack.snapshot(masu.nvm)
        masu.secure_write(HEAP, line_factory("newer"))  # victim updates
        outcome = run_read_attack(masu, attack, HEAP)
        assert outcome.detected

    def test_replay_requires_snapshot(self, masu):
        with pytest.raises(RuntimeError):
            DataReplayAttack(HEAP).apply(masu.nvm)

    def test_clean_read_not_flagged(self, masu, line_factory):
        assert masu.secure_read(HEAP) == line_factory("v0")


class TestWPQImageAttacks:
    def test_spoof_detected(self, line_factory):
        image = crashed_image(line_factory)
        slot = image.drained[0].slot
        outcome = run_wpq_attack(image, WPQImageSpoofAttack(slot))
        assert outcome.detected

    def test_spoof_detected_full_design(self, line_factory):
        image = crashed_image(line_factory, MiSUDesign.FULL_WPQ)
        slot = image.drained[0].slot
        outcome = run_wpq_attack(image, WPQImageSpoofAttack(slot))
        assert outcome.detected

    def test_relocation_detected(self, line_factory):
        image = crashed_image(line_factory)
        slots = [r.slot for r in image.drained[:2]]
        outcome = run_wpq_attack(image, WPQImageRelocationAttack(*slots))
        assert outcome.detected

    def test_replay_of_old_drain_detected(self, line_factory):
        """Records from a previous drain are useless: the persistent
        pad-counter register moved on, so their MACs verify against the
        wrong counters."""
        first = crashed_image(line_factory)
        slot = first.drained[0].slot
        old_payload = first.nvm.region_read(WPQ_IMAGE_REGION, slot)
        old_mac = first.nvm.region_read(WPQ_MAC_REGION, slot)
        from repro.recovery.recover import recover_system

        recover_system(first)  # advances pad counter + rotates key
        # Second life on the same NVM/registers/keys.
        config = first.config
        sim = Simulator()
        controller = DolosController(sim, config, nvm=first.nvm, keys=first.keys)
        controller.registers = first.registers
        controller.misu.registers = first.registers
        controller.misu.regenerate_pads()
        controller.start()
        controller.submit_write(
            WriteRequest(HEAP, WriteKind.PERSIST, data=line_factory("fresh"))
        )
        sim.run(until=1000)
        second = crash_system(controller)
        second.registers = first.registers
        outcome = run_wpq_attack(
            second, WPQImageReplayAttack(slot, old_payload, old_mac)
        )
        assert outcome.detected

    def test_counter_rollback_detected_at_recovery(self, line_factory):
        image = crashed_image(line_factory, writes=4)
        page = HEAP >> 12
        attack = CounterRollbackAttack(page)
        # Snapshot the *current* NVM counter block, let recovery... we
        # instead roll the shadow copy: simplest high-value check is the
        # shadow itself — roll the shadow entry back to zeros.
        from repro.security.anubis import KIND_COUNTER
        from repro.crypto.counters import CounterBlock

        image.nvm.region_write(
            "anubis_shadow", (page << 1) | KIND_COUNTER, CounterBlock().encode()
        )
        from repro.recovery.recover import RecoveryError, recover_system

        with pytest.raises(RecoveryError):
            recover_system(image)

    def test_untampered_image_recovers(self, line_factory):
        from repro.recovery.recover import recover_system

        image = crashed_image(line_factory)
        report = recover_system(image)
        assert report.wpq_entries_recovered > 0
