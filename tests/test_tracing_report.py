"""Span aggregation and reconciliation (repro/tracing/report.py).

test_tracing.py exercises the full traced-run pipeline end to end;
this module covers the report layer's own logic on synthetic inputs:
interval-union arithmetic, histogram aggregation, the stage table, and
every reconciliation failure path.
"""

from __future__ import annotations

from repro.harness.breakdown import CycleBreakdown
from repro.tracing.collector import SpanTracer
from repro.tracing.report import (
    _interval_union,
    reconcile,
    render_stage_table,
    stage_histograms,
)
from repro.tracing.spans import PersistSpan


def _span(slot=0, seq=0, kind="P", **stages) -> PersistSpan:
    span = PersistSpan(slot=slot, seq=seq, address=0x1000, kind=kind)
    for name, value in stages.items():
        setattr(span, name, value)
    return span


class TestIntervalUnion:
    def test_empty_and_degenerate(self):
        assert _interval_union([]) == 0
        assert _interval_union([(5, 5)]) == 0
        assert _interval_union([(7, 3)]) == 0  # inverted -> ignored

    def test_disjoint_intervals_sum(self):
        assert _interval_union([(0, 4), (10, 13)]) == 7

    def test_overlap_counted_once(self):
        assert _interval_union([(0, 10), (5, 15)]) == 15
        assert _interval_union([(0, 10), (2, 8)]) == 10  # contained

    def test_unsorted_input(self):
        assert _interval_union([(10, 20), (0, 5), (18, 25)]) == 20


class TestStageHistograms:
    def test_deltas_and_total_per_span(self):
        spans = [
            _span(seq=0, issue=0, alloc=2, protect=5, persisted=9),
            _span(seq=1, issue=10, alloc=13, protect=17, persisted=22),
        ]
        hists = stage_histograms(spans)
        assert hists["issue->alloc"].count == 2
        assert hists["issue->alloc"].mean == 2.5  # (2 + 3) / 2
        assert hists["alloc->protect"].mean == 3.5  # (3 + 4) / 2
        assert hists["total"].count == 2
        assert hists["total"].mean == 10.5  # (9 + 12) / 2

    def test_kind_filter_defaults_to_persists(self):
        spans = [
            _span(seq=0, kind="P", issue=0, persisted=4),
            _span(seq=1, kind="E", alloc=0, drain=6),
        ]
        assert stage_histograms(spans)["total"].count == 1
        assert stage_histograms(spans, kinds=("P", "E"))["total"].count == 2
        assert stage_histograms(spans, kinds=())["total"].count == 2

    def test_degenerate_spans_contribute_nothing(self):
        assert stage_histograms([_span(issue=3)]) == {}

    def test_observed_order_labels_post_wpq_inversion(self):
        # Post-WPQ protects *after* persist: the delta label follows
        # the observed order, not the nominal pipeline order.
        hists = stage_histograms([_span(issue=0, persisted=5, protect=9)])
        assert "persisted->protect" in hists
        assert "protect->persisted" not in hists


class TestRenderStageTable:
    def test_rows_in_pipeline_order_with_total_last(self):
        spans = [_span(issue=0, alloc=2, protect=5, persisted=9)]
        out = render_stage_table("demo", spans)
        assert "per-stage persist latency (cycles) — demo" in out
        positions = [
            out.index(label)
            for label in (
                "issue->alloc",
                "alloc->protect",
                "protect->persisted",
                "total",
            )
        ]
        assert positions == sorted(positions)

    def test_percentile_columns_present(self):
        out = render_stage_table("x", [_span(issue=0, persisted=8)])
        header = out.splitlines()[1]
        for column in ("stage", "spans", "mean", "p50", "p95", "p99"):
            assert column in header


def _tracer(fence=100, spans=(), unmatched=0, dropped=0) -> SpanTracer:
    tracer = SpanTracer()
    tracer.fence_stall_cycles = fence
    tracer.spans.extend(spans)
    tracer.unmatched_events = unmatched
    tracer.dropped_events = dropped
    return tracer


class TestReconcile:
    SPANS = [_span(issue=0, persisted=200)]

    def test_matching_totals_pass(self):
        outcome = reconcile(
            _tracer(fence=100, spans=self.SPANS),
            CycleBreakdown(total=1000, fence_stall=100, read_stall=0),
        )
        assert outcome.passed
        assert outcome.tracer_fence_cycles == 100
        assert outcome.breakdown_fence_cycles == 100
        assert outcome.outstanding_union_cycles == 200

    def test_mismatch_beyond_slack_fails(self):
        outcome = reconcile(
            _tracer(fence=1000, spans=self.SPANS),
            CycleBreakdown(total=9000, fence_stall=4000, read_stall=0),
        )
        assert not outcome.passed
        assert any("fence-stall mismatch" in f for f in outcome.failures)

    def test_mismatch_within_absolute_floor_passes(self):
        # 2% of 100 is 2 cycles, but the 64-cycle absolute floor
        # absorbs event-log truncation on tiny runs.
        outcome = reconcile(
            _tracer(fence=160, spans=self.SPANS),
            CycleBreakdown(total=1000, fence_stall=100, read_stall=0),
        )
        assert outcome.passed
        assert outcome.slack_cycles == 64

    def test_stall_with_nothing_outstanding_fails(self):
        # The core can only fence-stall while a persist is in flight:
        # a breakdown total exceeding the spans' outstanding union is
        # a model-level inconsistency even if the two counters agree.
        outcome = reconcile(
            _tracer(fence=5000, spans=[_span(issue=0, persisted=100)]),
            CycleBreakdown(total=9000, fence_stall=5000, read_stall=0),
        )
        assert any("outstanding-persist union" in f for f in outcome.failures)

    def test_unmatched_and_dropped_events_fail(self):
        outcome = reconcile(
            _tracer(fence=100, spans=self.SPANS, unmatched=3, dropped=2),
            CycleBreakdown(total=1000, fence_stall=100, read_stall=0),
        )
        assert any("did not match" in f for f in outcome.failures)
        assert any("dropped" in f for f in outcome.failures)
        assert outcome.unmatched_events == 3
        assert outcome.dropped_events == 2

    def test_open_spans_count_toward_the_union(self):
        tracer = _tracer(fence=100, spans=[])
        tracer.open[0] = _span(issue=0, persisted=300)
        outcome = reconcile(
            tracer, CycleBreakdown(total=1000, fence_stall=100, read_stall=0)
        )
        assert outcome.outstanding_union_cycles == 300

    def test_eviction_spans_excluded_from_the_union(self):
        outcome = reconcile(
            _tracer(
                fence=0,
                spans=[_span(kind="E", issue=0, persisted=500)],
            ),
            CycleBreakdown(total=1000, fence_stall=0, read_stall=0),
        )
        assert outcome.outstanding_union_cycles == 0
