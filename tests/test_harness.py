"""Tests for the runner, tables, and experiment harness."""

import pytest

from repro.config import ControllerKind, MiSUDesign, SimConfig
from repro.harness.experiments import (
    EXPERIMENTS,
    TraceCache,
    run_experiment,
    sec55_recovery,
    tab03_storage,
)
from repro.harness.runner import RunResult, geomean, run_trace, run_workload, speedup
from repro.harness.tables import render_table
from repro.workloads import generate_trace


class TestRunner:
    def test_run_workload_produces_cycles(self):
        result = run_workload(SimConfig(), "hashmap", transactions=20)
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.cpi > 0

    def test_run_trace_deterministic(self):
        trace = generate_trace("ctree", 20, 256, seed=2)
        a = run_trace(SimConfig(), trace, "ctree", 20)
        b = run_trace(SimConfig(), trace, "ctree", 20)
        assert a.cycles == b.cycles

    def test_speedup(self):
        slow = RunResult("w", ControllerKind.DOLOS, MiSUDesign.PARTIAL_WPQ,
                         1, 1024, cycles=200, instructions=10)
        fast = RunResult("w", ControllerKind.DOLOS, MiSUDesign.PARTIAL_WPQ,
                         1, 1024, cycles=100, instructions=10)
        assert speedup(slow, fast) == 2.0
        with pytest.raises(ValueError):
            speedup(slow, RunResult("w", ControllerKind.DOLOS,
                                    MiSUDesign.PARTIAL_WPQ, 1, 1024, 0, 1))

    def test_retries_per_kwr(self):
        result = RunResult(
            "w", ControllerKind.DOLOS, MiSUDesign.PARTIAL_WPQ, 1, 1024,
            cycles=1, instructions=1,
            stats={"controller.writes": 2000, "wpq.retry_events": 100},
        )
        assert result.retries_per_kwr == 50.0

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in text

    def test_columns_align(self):
        text = render_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])


class TestExperiments:
    def test_registry_covers_all_artifacts(self):
        paper_artifacts = {
            "motivation", "fig06", "fig12", "fig13", "fig14", "fig15",
            "fig16", "tab02", "tab03", "sec55",
        }
        assert paper_artifacts <= set(EXPERIMENTS)
        assert "breakdown" in EXPERIMENTS  # analysis view

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_trace_cache_reuses(self):
        cache = TraceCache()
        a = cache.get("hashmap", 10, 256, 1)
        b = cache.get("hashmap", 10, 256, 1)
        assert a is b
        c = cache.get("hashmap", 10, 256, 2)
        assert c is not a

    def test_tab03_matches_paper(self):
        result = tab03_storage()
        rows = {row[0]: row[1:] for row in result.rows}
        assert rows["persistent_counter"] == [8, 8, 8]
        assert rows["macs"] == [192, 128, 128]
        assert rows["encryption_pads"] == [72 * 16, 80 * 13, 80 * 10]

    def test_sec55_matches_paper(self):
        result = sec55_recovery()
        full_row = result.rows[0]
        assert full_row[6] == 44480

    def test_render_includes_summary_and_notes(self):
        result = sec55_recovery()
        text = result.render()
        assert "44480" in text
        assert "Paper" in text

    def test_small_fig12_run(self):
        """A tiny end-to-end fig12: Dolos must beat the baseline on
        every workload, and Post must trail Partial on average."""
        result = run_experiment("fig12", transactions=25, seed=1)
        assert len(result.rows) == 6
        for row in result.rows:
            _, full, partial, post = row
            assert full > 1.0
            assert partial > 1.0
            assert post > 1.0
        assert (
            result.summary["mean Partial-WPQ-MiSU"]
            >= result.summary["mean Post-WPQ-MiSU"]
        )

    def test_small_tab02_run(self):
        result = run_experiment("tab02", transactions=25, seed=1)
        assert len(result.rows) == 6
        # Full <= Partial <= Post per workload (larger queue, fewer
        # retries); tiny 25-txn runs carry some noise, so allow 15%.
        full_sum = partial_sum = post_sum = 0.0
        for row in result.rows:
            _, full, partial, post = row
            assert full <= partial * 1.15 <= post * 1.15**2
            full_sum += full
            partial_sum += partial
            post_sum += post
        # The ordering must hold strictly on the aggregate.
        assert full_sum <= partial_sum <= post_sum
