"""Tests for Resource, PipelineLane and FifoChannel."""

import pytest

from repro.engine import Delay, Process, Simulator
from repro.engine.kernel import SimulationError
from repro.engine.resources import FifoChannel, PipelineLane, Resource


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, 0)

    def test_try_acquire_respects_capacity(self, sim):
        res = Resource(sim, 2)
        assert res.try_acquire()
        assert res.try_acquire()
        assert not res.try_acquire()
        res.release()
        assert res.try_acquire()

    def test_release_idle_raises(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_granting(self, sim):
        res = Resource(sim, 1, "r")
        order = []

        def worker(name, hold):
            yield from res.acquire()
            order.append((name, sim.now))
            yield Delay(hold)
            res.release()

        Process(sim, worker("a", 10))
        Process(sim, worker("b", 10))
        Process(sim, worker("c", 10))
        sim.run()
        assert order == [("a", 0), ("b", 10), ("c", 20)]

    def test_wait_cycles_accounted(self, sim):
        res = Resource(sim, 1)

        def worker(hold):
            yield from res.acquire()
            yield Delay(hold)
            res.release()

        Process(sim, worker(10))
        Process(sim, worker(1))
        sim.run()
        assert res.total_wait_cycles == 10
        assert res.total_acquisitions == 2

    def test_try_acquire_fails_while_queue_waits(self, sim):
        """A late try_acquire must not jump the FIFO queue."""
        res = Resource(sim, 1)

        def holder():
            yield from res.acquire()
            yield Delay(10)
            res.release()

        def waiter():
            yield from res.acquire()
            res.release()

        Process(sim, holder())
        Process(sim, waiter())
        sim.run(until=5)
        assert not res.try_acquire()


class TestPipelineLane:
    def test_interval_validation(self):
        with pytest.raises(SimulationError):
            PipelineLane(0)

    def test_books_at_interval(self):
        lane = PipelineLane(10)
        s1, d1 = lane.book(0, 100)
        s2, d2 = lane.book(0, 100)
        s3, d3 = lane.book(0, 100)
        assert (s1, s2, s3) == (0, 10, 20)
        assert (d1, d2, d3) == (100, 110, 120)

    def test_idle_lane_starts_immediately(self):
        lane = PipelineLane(10)
        lane.book(0, 5)
        start, done = lane.book(500, 5)
        assert start == 500
        assert done == 505

    def test_next_free(self):
        lane = PipelineLane(10)
        assert lane.next_free(7) == 7
        lane.book(7, 100)
        assert lane.next_free(7) == 17

    def test_operation_count(self):
        lane = PipelineLane(4)
        for _ in range(5):
            lane.book(0, 1)
        assert lane.operations == 5


class TestFifoChannel:
    def test_put_then_get(self, sim):
        chan = FifoChannel(sim)
        chan.put("x")
        got = []

        def worker():
            item = yield from chan.get()
            got.append(item)

        Process(sim, worker())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        chan = FifoChannel(sim)
        got = []

        def worker():
            item = yield from chan.get()
            got.append((item, sim.now))

        Process(sim, worker())
        sim.schedule(25, lambda: chan.put("late"))
        sim.run()
        assert got == [("late", 25)]

    def test_bounded_overflow(self, sim):
        chan = FifoChannel(sim, capacity=1)
        chan.put(1)
        assert chan.is_full
        with pytest.raises(SimulationError):
            chan.put(2)

    def test_try_get(self, sim):
        chan = FifoChannel(sim)
        assert chan.try_get() is None
        chan.put(5)
        assert chan.try_get() == 5

    def test_fifo_order(self, sim):
        chan = FifoChannel(sim)
        for i in range(5):
            chan.put(i)
        got = []

        def worker():
            for _ in range(5):
                item = yield from chan.get()
                got.append(item)

        Process(sim, worker())
        sim.run()
        assert got == [0, 1, 2, 3, 4]
