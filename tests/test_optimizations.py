"""Tests for the composable back-end optimizations and secure eADR."""

import pytest

from repro.config import ControllerKind, SecurityConfig, SimConfig
from repro.core.controller import (
    DolosController,
    EADRSecureController,
    make_controller,
)
from repro.core.masu import DEDUP_MAP_REGION, MajorSecurityUnit
from repro.core.registers import PersistentRegisters
from repro.core.requests import WriteKind, WriteRequest
from repro.crypto.keys import KeyStore
from repro.engine import Simulator
from repro.mem.nvm import NVMDevice
from repro.security.optimizations import (
    DedupDetector,
    DeuceTracker,
    MorphableCounterModel,
    content_hash,
)

HEAP = 0x1_0000_0000


def build_masu(**security_changes):
    config = SimConfig().with_(security=SecurityConfig(**security_changes))
    return MajorSecurityUnit(
        config, KeyStore(5), PersistentRegisters(), NVMDevice(config.nvm)
    )


class TestDedupDetector:
    def test_duplicate_found(self, line_factory):
        dedup = DedupDetector()
        data = line_factory("same")
        dedup.record_write(0x1000, data)
        assert dedup.check(0x2000, data) == 0x1000

    def test_same_address_not_a_duplicate(self, line_factory):
        dedup = DedupDetector()
        data = line_factory("same")
        dedup.record_write(0x1000, data)
        assert dedup.check(0x1000, data) is None

    def test_different_content_no_hit(self, line_factory):
        dedup = DedupDetector()
        dedup.record_write(0x1000, line_factory("a"))
        assert dedup.check(0x2000, line_factory("b")) is None

    def test_resolve_follows_mapping(self, line_factory):
        dedup = DedupDetector()
        dedup.record_duplicate(0x2000, 0x1000)
        assert dedup.resolve(0x2000) == 0x1000
        assert dedup.resolve(0x3000) == 0x3000

    def test_real_write_drops_stale_mapping(self, line_factory):
        dedup = DedupDetector()
        dedup.record_duplicate(0x2000, 0x1000)
        dedup.record_write(0x2000, line_factory("fresh"))
        assert dedup.resolve(0x2000) == 0x2000

    def test_content_hash_deterministic(self, line_factory):
        data = line_factory("x")
        assert content_hash(data) == content_hash(data)


class TestDedupInMaSU:
    def test_duplicate_write_cancelled(self, line_factory):
        masu = build_masu(enable_dedup=True)
        data = line_factory("dup")
        masu.secure_write(HEAP, data)
        masu.secure_write(HEAP + 64, data)  # identical content
        assert masu.dedup_cancelled_writes == 1
        assert masu.nvm.read_line(HEAP + 64) is None  # no second copy
        assert masu.nvm.region_read(DEDUP_MAP_REGION, HEAP + 64) is not None

    def test_deduped_read_returns_content(self, line_factory):
        masu = build_masu(enable_dedup=True)
        data = line_factory("dup")
        masu.secure_write(HEAP, data)
        masu.secure_write(HEAP + 64, data)
        assert masu.secure_read(HEAP + 64) == data

    def test_distinct_content_unaffected(self, line_factory):
        masu = build_masu(enable_dedup=True)
        a, b = line_factory("a"), line_factory("b")
        masu.secure_write(HEAP, a)
        masu.secure_write(HEAP + 64, b)
        assert masu.dedup_cancelled_writes == 0
        assert masu.secure_read(HEAP + 64) == b

    def test_disabled_by_default(self, line_factory):
        masu = build_masu()
        assert masu.dedup is None


class TestDeuce:
    def test_first_write_full_reencrypt(self, line_factory):
        deuce = DeuceTracker()
        assert deuce.observe_write(HEAP, line_factory("v")) == 8

    def test_partial_write_counts_changed_words(self, line_factory):
        deuce = DeuceTracker(epoch_interval=100)
        base = bytearray(line_factory("v"))
        deuce.observe_write(HEAP, bytes(base))
        base[0] ^= 0xFF  # change one word
        assert deuce.observe_write(HEAP, bytes(base)) == 1

    def test_epoch_forces_full_reencrypt(self, line_factory):
        deuce = DeuceTracker(epoch_interval=2)
        data = line_factory("v")
        deuce.observe_write(HEAP, data)   # write 0: full (epoch)
        deuce.observe_write(HEAP, data)   # write 1: partial, 0 changed
        words = deuce.observe_write(HEAP, data)  # write 2: epoch again
        assert words == 8

    def test_bit_flip_reduction_positive(self, line_factory):
        deuce = DeuceTracker(epoch_interval=100)
        base = bytearray(line_factory("v"))
        deuce.observe_write(HEAP, bytes(base))
        for i in range(5):
            base[8] ^= 1 << i
            deuce.observe_write(HEAP, bytes(base))
        assert deuce.stats.bit_flip_reduction > 0.5
        assert deuce.stats.word_write_ratio < 0.5

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            DeuceTracker(epoch_interval=0)

    def test_masu_integration(self, line_factory):
        masu = build_masu(enable_deuce=True)
        data = line_factory("v")
        masu.secure_write(HEAP, data)
        masu.secure_write(HEAP, data)
        assert masu.deuce.stats.lines_written == 2


class TestMorphableCounters:
    def test_cache_key_groups_pages(self):
        model = MorphableCounterModel(coverage_factor=2)
        assert model.cache_key(0) == model.cache_key(1)
        assert model.cache_key(0) != model.cache_key(2)

    def test_reduces_counter_misses(self):
        """Striding across pages: doubled coverage halves the misses."""
        baseline = build_masu()
        morphable = build_masu(morphable_coverage=4)
        for page in range(256):
            address = page << 12
            baseline.counter_access_latency(0, address, True)
            morphable.counter_access_latency(0, address, True)
        assert morphable.counter_cache.misses < baseline.counter_cache.misses

    def test_functional_behaviour_unchanged(self, line_factory):
        masu = build_masu(morphable_coverage=4)
        data = line_factory("v")
        masu.secure_write(HEAP, data)
        assert masu.secure_read(HEAP) == data


class TestEADRController:
    def _run(self, writes=30):
        config = SimConfig().with_(controller=ControllerKind.EADR_SECURE)
        sim = Simulator()
        controller = make_controller(sim, config)
        times = []
        for i in range(writes):
            done = controller.submit_write(
                WriteRequest(HEAP + i * 64, WriteKind.PERSIST)
            )
            done.subscribe(lambda _v: times.append(sim.now))
        sim.run()
        return controller, times

    def test_factory(self):
        config = SimConfig().with_(controller=ControllerKind.EADR_SECURE)
        controller = make_controller(Simulator(), config)
        assert isinstance(controller, EADRSecureController)

    def test_persists_complete_immediately(self):
        controller, times = self._run()
        assert all(t <= 2 for t in times)

    def test_large_buffer_no_retries(self):
        controller, _ = self._run(writes=100)
        assert controller.wpq.retry_events == 0

    def test_crash_is_out_of_budget(self):
        config = SimConfig().with_(controller=ControllerKind.EADR_SECURE)
        sim = Simulator()
        controller = make_controller(sim, config)
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        sim.run(until=10)
        with pytest.raises(RuntimeError, match="battery|budget|ADR"):
            controller.crash()

    def test_eadr_upper_bounds_dolos(self):
        """Dolos approximates eADR from below (the intro's trade-off)."""
        from repro.harness.runner import run_trace
        from repro.workloads import generate_trace

        trace = generate_trace("hashmap", 40, 1024, seed=4)
        dolos = run_trace(SimConfig(), trace, "t", 40)
        eadr = run_trace(
            SimConfig().with_(controller=ControllerKind.EADR_SECURE),
            trace, "t", 40,
        )
        assert eadr.cycles <= dolos.cycles


class TestDedupCrashRecovery:
    def test_mappings_survive_crash(self, line_factory):
        """A dedup-cancelled write's read must work after recovery —
        the mapping region is part of the persistent image."""
        from repro.config import SecurityConfig
        from repro.recovery import crash_system, recover_system

        config = SimConfig().with_(security=SecurityConfig(enable_dedup=True))
        sim = Simulator()
        controller = DolosController(sim, config)
        controller.start()
        data = line_factory("dup")
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST, data=data))
        controller.submit_write(
            WriteRequest(HEAP + 64, WriteKind.PERSIST, data=data)
        )
        sim.run()
        assert controller.masu.dedup_cancelled_writes == 1
        image = crash_system(controller)
        report = recover_system(image)
        assert report.masu.secure_read(HEAP) == data
        assert report.masu.secure_read(HEAP + 64) == data
