"""Characterization: the fleet report pinned against a fixed fixture.

``tests/data/fleet_fixture.sqlite`` (regenerate with
``python tools/make_fleet_fixture.py``) holds two synthetic
formula-generated experiments.  These tests pin the exact statistics
the report derives from them, so any change to aggregation, pairing,
fault rollups or trend math shows up as a diff here — on data that can
never drift with the simulator.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fleet.db import FleetDB
from repro.fleet.report import build_report, render_html

FIXTURE = Path(__file__).parent / "data" / "fleet_fixture.sqlite"


@pytest.fixture(scope="module")
def report():
    db = FleetDB(FIXTURE, readonly=True)
    return build_report(db, "fleet-fixture-b", baseline="fleet-fixture-a")


class TestPinnedReport:
    def test_identity_and_counts(self, report):
        assert report["report_version"] == 1
        assert report["experiment_id"] == "fleet-fixture-b"
        assert report["git_hash"].startswith("fixture")
        assert report["units"] == {
            "total": 24, "run": 12, "faults": 12, "scenario": 0,
            "duplicates": 0,
        }
        assert report["workers"] == ["worker-0", "worker-1", "worker-2"]

    def test_aggregate_cells_pinned(self, report):
        cells = {
            (a["workload"], a["design"]): a for a in report["aggregates"]
        }
        assert set(cells) == {
            ("btree", "dolos-partial"), ("btree", "prewpq-eager"),
            ("hashmap", "dolos-partial"), ("hashmap", "prewpq-eager"),
        }
        # Formula: cycles = 10000 + 500w + 1500d + 10s - 400(1-d);
        # mean over seeds {1,2,3} adds 20, stdev of {10,20,30} is 10.
        assert cells[("btree", "dolos-partial")]["cycles"]["mean"] == 9620.0
        assert cells[("btree", "prewpq-eager")]["cycles"]["mean"] == 11520.0
        assert cells[("hashmap", "dolos-partial")]["cycles"]["mean"] == 10120.0
        assert cells[("hashmap", "prewpq-eager")]["cycles"]["mean"] == 12020.0
        for cell in cells.values():
            assert cell["seeds"] == [1, 2, 3]
            assert cell["cycles"]["n"] == 3
            assert cell["cycles"]["stdev"] == pytest.approx(10.0)
            assert cell["cycles"]["ci95"] == pytest.approx(11.3160652761)
        assert cells[("btree", "dolos-partial")]["cpi"]["mean"] == (
            pytest.approx(2.3966138211545)
        )

    def test_speedups_pinned(self, report):
        speedups = {s["workload"]: s for s in report["speedups"]}
        assert set(speedups) == {"btree", "hashmap"}
        for s in speedups.values():
            assert (s["baseline"], s["improved"]) == (
                "dolos-partial", "prewpq-eager",
            )
            assert s["seeds"] == [1, 2, 3]
        assert speedups["btree"]["speedup"]["mean"] == (
            pytest.approx(0.8350693615920)
        )
        assert speedups["hashmap"]["speedup"]["mean"] == (
            pytest.approx(0.8419300435353)
        )

    def test_fault_rollups_pinned(self, report):
        rollups = {
            (f["workload"], f["design"]): f for f in report["faults"]
        }
        for workload in ("btree", "hashmap"):
            clean = rollups[(workload, "dolos-partial")]
            assert (clean["detected"], clean["tolerated"], clean["silent"]) \
                == (6, 3, 0)
            assert clean["units_passed"] == clean["units_total"] == 3
            dirty = rollups[(workload, "prewpq-eager")]
            # The fixture plants exactly one silent corruption per
            # workload in the prewpq cell (seed 3).
            assert (dirty["detected"], dirty["tolerated"], dirty["silent"]) \
                == (5, 3, 1)
            assert dirty["units_passed"] == 2
            assert dirty["sites"] == 9

    def test_trend_vs_baseline_pinned(self, report):
        trend = {(t["workload"], t["design"]): t for t in report["trend"]}
        # Fixture-b improves only the dolos configs, by exactly 400.
        for workload in ("btree", "hashmap"):
            assert trend[(workload, "dolos-partial")]["delta"] == -400.0
            assert trend[(workload, "prewpq-eager")]["delta"] == 0.0
        assert trend[("btree", "dolos-partial")]["delta_pct"] == (
            pytest.approx(-3.9920159681)
        )
        assert trend[("hashmap", "dolos-partial")]["delta_pct"] == (
            pytest.approx(-3.8022813688)
        )

    def test_report_is_deterministic(self, report):
        db = FleetDB(FIXTURE, readonly=True)
        again = build_report(
            db, "fleet-fixture-b", baseline="fleet-fixture-a"
        )
        assert again == report

    def test_html_renders_every_section(self, report):
        html = render_html(report)
        assert html.startswith("<!doctype html>")
        assert "Fleet report — fleet-fixture-b" in html
        for marker in (
            "Per-config aggregates", "Pairwise speedups", "Fault campaigns",
            "Trend vs fleet-fixture-a",
        ):
            assert marker in html
        # The silent corruption is flagged, clean cells are green.
        assert "<span class='bad'>1</span>" in html
        assert "<span class='good'>0</span>" in html
        assert "-3.99%" in html
