"""Tests for the keyed PRF and counter-mode pads."""

import pytest

from repro.crypto.prf import ctr_pad, keyed_prf, make_iv, xor_bytes


class TestKeyedPRF:
    def test_deterministic(self):
        assert keyed_prf(b"k", b"m", 32) == keyed_prf(b"k", b"m", 32)

    def test_key_separation(self):
        assert keyed_prf(b"k1", b"m", 32) != keyed_prf(b"k2", b"m", 32)

    def test_message_separation(self):
        assert keyed_prf(b"k", b"m1", 32) != keyed_prf(b"k", b"m2", 32)

    def test_length_extension_consistent_prefix(self):
        short = keyed_prf(b"k", b"m", 16)
        long = keyed_prf(b"k", b"m", 200)
        assert long[:16] == short
        assert len(long) == 200

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            keyed_prf(b"", b"m")


class TestIV:
    def test_iv_packs_page_and_offset(self):
        # Same page, different line -> different IV.
        assert make_iv(0x1000, 5) != make_iv(0x1040, 5)
        # Same line, different counter -> different IV.
        assert make_iv(0x1000, 5) != make_iv(0x1000, 6)

    def test_iv_stable(self):
        assert make_iv(0xABCD000, 77) == make_iv(0xABCD000, 77)


class TestCtrPad:
    def test_pad_spatially_unique(self):
        key = b"\x11" * 32
        assert ctr_pad(key, 0x1000, 1) != ctr_pad(key, 0x2000, 1)

    def test_pad_temporally_unique(self):
        key = b"\x11" * 32
        assert ctr_pad(key, 0x1000, 1) != ctr_pad(key, 0x1000, 2)

    def test_encrypt_decrypt_roundtrip(self):
        key = b"\x22" * 32
        plaintext = bytes(range(64))
        pad = ctr_pad(key, 0x4000, 9)
        ciphertext = xor_bytes(plaintext, pad)
        assert ciphertext != plaintext
        assert xor_bytes(ciphertext, pad) == plaintext

    def test_same_plaintext_different_counter_unrelated_ciphertext(self):
        key = b"\x33" * 32
        plaintext = b"\x00" * 64
        c1 = xor_bytes(plaintext, ctr_pad(key, 0x1000, 1))
        c2 = xor_bytes(plaintext, ctr_pad(key, 0x1000, 2))
        assert c1 != c2

    def test_pad_length(self):
        assert len(ctr_pad(b"k", 0, 0, 72)) == 72
        assert len(ctr_pad(b"k", 0, 0, 80)) == 80


class TestXorBytes:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    def test_self_inverse(self):
        a = b"\xaa" * 16
        b = b"\x55" * 16
        assert xor_bytes(xor_bytes(a, b), b) == a
