"""Plain-text table rendering (repro/harness/tables.py)."""

from __future__ import annotations

from repro.harness.tables import format_cell, render_table


class TestFormatCell:
    def test_floats_render_with_two_decimals(self):
        assert format_cell(2.5) == "2.50"
        assert format_cell(1.0 / 3.0) == "0.33"
        assert format_cell(-0.5) == "-0.50"

    def test_ints_and_strings_pass_through(self):
        assert format_cell(7) == "7"
        assert format_cell(0) == "0"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_exact_layout(self):
        out = render_table(
            ["a", "bb"], [[1, 2.5], ["xyz", "q"]], title="t"
        )
        assert out == "\n".join(
            [
                "t",
                "  a |   bb",
                "----+-----",
                "  1 | 2.50",
                "xyz |    q",
            ]
        )

    def test_no_title_line_when_title_empty(self):
        out = render_table(["h"], [[1]])
        assert out.splitlines()[0] == "h"

    def test_columns_widen_to_the_longest_cell(self):
        out = render_table(["x"], [["longer-than-header"]])
        header, sep, row = out.splitlines()
        assert header == "x".rjust(len("longer-than-header"))
        assert sep == "-" * len("longer-than-header")
        assert row == "longer-than-header"

    def test_empty_rows_render_header_and_separator_only(self):
        out = render_table(["a", "b"], [])
        assert out.splitlines() == ["a | b", "--+--"]

    def test_all_rows_share_one_width_per_column(self):
        out = render_table(
            ["name", "v"],
            [["short", 1], ["a-much-longer-name", 123456]],
            title="widths",
        )
        lines = out.splitlines()
        assert len({len(line) for line in lines[1:]}) == 1
