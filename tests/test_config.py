"""Tests for configuration dataclasses and Table 1 defaults."""

import pytest

from repro.config import (
    ADRConfig,
    CacheConfig,
    ControllerKind,
    MiSUDesign,
    NVMConfig,
    SecurityConfig,
    SimConfig,
    TreeUpdateScheme,
    eager_config,
    lazy_config,
)


class TestTable1Defaults:
    def test_cache_geometry(self):
        config = SimConfig()
        assert config.l1.size_bytes == 32 << 10
        assert config.l1.associativity == 2
        assert config.l1.latency == 2
        assert config.l2.size_bytes == 512 << 10
        assert config.l2.associativity == 8
        assert config.l2.latency == 20
        assert config.llc.size_bytes == 8 << 20
        assert config.llc.associativity == 16
        assert config.llc.latency == 32

    def test_nvm_timing(self):
        nvm = NVMConfig()
        assert nvm.read_latency == 600  # 150ns @ 4GHz
        assert nvm.write_latency == 2000  # 500ns @ 4GHz
        assert nvm.size_bytes == 16 << 30

    def test_security_latencies(self):
        security = SecurityConfig()
        assert security.aes_latency == 40
        assert security.mac_latency == 160
        assert security.counter_cache.size_bytes == 128 << 10
        assert security.counter_cache.associativity == 4
        assert security.mt_cache.size_bytes == 256 << 10
        assert security.mt_cache.associativity == 8
        assert security.tree_arity == 8

    def test_masu_hash_latency_eager(self):
        security = SecurityConfig(tree_update=TreeUpdateScheme.EAGER)
        assert security.masu_hash_latency == 160 * 10

    def test_masu_hash_latency_lazy(self):
        security = SecurityConfig(tree_update=TreeUpdateScheme.LAZY)
        assert security.masu_hash_latency == 160 * 4

    def test_lazy_critical_path_shorter(self):
        security = SecurityConfig(tree_update=TreeUpdateScheme.LAZY)
        assert security.masu_critical_hash_latency < security.masu_hash_latency

    def test_misu_hash_latency(self):
        assert SimConfig().with_(
            misu_design=MiSUDesign.FULL_WPQ
        ).misu_hash_latency() == 320
        assert SimConfig().misu_hash_latency() == 160


class TestADRSizing:
    def test_paper_sizes_at_default_budget(self):
        adr = ADRConfig()
        assert adr.usable_entries(MiSUDesign.FULL_WPQ) == 16
        assert adr.usable_entries(MiSUDesign.PARTIAL_WPQ) == 13
        assert adr.usable_entries(MiSUDesign.POST_WPQ) == 10

    def test_fig15_partial_sizes(self):
        """Section 5.3: budgets 16/32/64/128 -> 13/28/57/113 entries."""
        expected = {16: 13, 32: 28, 64: 57, 128: 113}
        for budget, partial in expected.items():
            adr = ADRConfig(budget_entries=budget)
            assert adr.usable_entries(MiSUDesign.PARTIAL_WPQ) == partial

    def test_unpinned_budget_uses_8_9_rule(self):
        adr = ADRConfig(budget_entries=18)
        assert adr.usable_entries(MiSUDesign.PARTIAL_WPQ) == 16

    def test_paper_splits_across_budgets(self):
        """Pin the 16/32/64/128 splits for every Mi-SU design."""
        expected = {
            16: (16, 13, 10),
            32: (32, 28, 25),
            64: (64, 57, 54),
            128: (128, 113, 110),
        }
        for budget, (full, partial, post) in expected.items():
            adr = ADRConfig(budget_entries=budget)
            assert adr.usable_entries(MiSUDesign.FULL_WPQ) == full
            assert adr.usable_entries(MiSUDesign.PARTIAL_WPQ) == partial
            assert adr.usable_entries(MiSUDesign.POST_WPQ) == post

    def test_infeasible_post_budget_raises(self):
        """A budget that cannot hold one entry plus the deferred-MAC
        reservation is a model error, not a 1-entry queue."""
        adr = ADRConfig(budget_entries=4)  # 8/9 rule -> 3; 3 - 2 - 1 = 0
        with pytest.raises(ValueError, match="deferred-MAC reservation"):
            adr.usable_entries(MiSUDesign.POST_WPQ)
        # Full/Partial stay feasible at the same budget.
        assert adr.usable_entries(MiSUDesign.FULL_WPQ) == 4
        assert adr.usable_entries(MiSUDesign.PARTIAL_WPQ) == 3

    def test_infeasible_partial_budget_raises(self):
        adr = ADRConfig(budget_entries=1)  # 8/9 rule -> 0 entries
        with pytest.raises(ValueError, match="cannot hold"):
            adr.usable_entries(MiSUDesign.PARTIAL_WPQ)
        assert adr.usable_entries(MiSUDesign.FULL_WPQ) == 1


class TestSimConfig:
    def test_wpq_entries_by_controller(self):
        assert SimConfig().wpq_entries == 13  # Dolos partial
        baseline = SimConfig().with_(controller=ControllerKind.PRE_WPQ_SECURE)
        assert baseline.wpq_entries == 16

    def test_with_returns_modified_copy(self):
        base = SimConfig()
        changed = base.with_(transaction_size=128)
        assert changed.transaction_size == 128
        assert base.transaction_size == 1024

    def test_frozen(self):
        with pytest.raises(Exception):
            SimConfig().transaction_size = 5

    def test_factory_helpers(self):
        assert eager_config().security.tree_update is TreeUpdateScheme.EAGER
        assert lazy_config().security.tree_update is TreeUpdateScheme.LAZY
        assert lazy_config(transaction_size=256).transaction_size == 256

    def test_issue_interval_per_scheme(self):
        assert (
            eager_config().security.masu_issue_interval
            == eager_config().security.eager_issue_interval
        )
        assert (
            lazy_config().security.masu_issue_interval
            == lazy_config().security.lazy_issue_interval
        )


class TestCacheConfig:
    def test_derived_geometry(self):
        config = CacheConfig("x", 64 * 64, 4, 1)
        assert config.num_lines == 64
        assert config.num_sets == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 100, 4, 1)
