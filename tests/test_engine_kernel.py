"""Tests for the discrete-event kernel and event queue."""

import pytest

from repro.engine import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(30, lambda: fired.append(30))
        queue.push(10, lambda: fired.append(10))
        queue.push(20, lambda: fired.append(20))
        while len(queue):
            event = queue.pop()
            event.callback()
        assert fired == [10, 20, 30]

    def test_equal_times_fire_in_schedule_order(self):
        queue = EventQueue()
        order = []
        for i in range(10):
            queue.push(5, lambda i=i: order.append(i))
        while len(queue):
            queue.pop().callback()
        assert order == list(range(10))

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(1, lambda: None)
        queue.push(9, lambda: None)
        early.cancel()
        assert queue.peek_time() == 9

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        queue = EventQueue()
        queue.push(1, lambda: None)
        queue.clear()
        assert len(queue) == 0


class TestSimulator:
    def test_runs_scheduled_callback_at_right_time(self, sim):
        seen = []
        sim.schedule(10, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10]

    def test_zero_delay_fires_at_now(self, sim):
        sim.schedule(5, lambda: sim.schedule(0, lambda: seen.append(sim.now)))
        seen = []
        sim.run()
        assert seen == [5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute(self, sim):
        seen = []
        sim.schedule_at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_run_until_stops_clock(self, sim):
        seen = []
        sim.schedule(10, lambda: seen.append("early"))
        sim.schedule(100, lambda: seen.append("late"))
        sim.run(until=50)
        assert seen == ["early"]
        assert sim.now == 50
        sim.run()
        assert seen == ["early", "late"]

    def test_events_at_exactly_until_still_fire(self, sim):
        seen = []
        sim.schedule(50, lambda: seen.append(True))
        sim.run(until=50)
        assert seen == [True]

    def test_cancelled_events_do_not_fire(self, sim):
        seen = []
        event = sim.schedule(10, lambda: seen.append(True))
        event.cancel()
        sim.run()
        assert seen == []

    def test_max_events_guard(self, sim):
        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_stop_request(self, sim):
        seen = []
        sim.schedule(1, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_step_advances_one_event(self, sim):
        seen = []
        sim.schedule(1, lambda: seen.append(1))
        sim.schedule(2, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]
        assert sim.step()
        assert seen == [1, 2]
        assert not sim.step()

    def test_events_fired_counter(self, sim):
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_fired == 7

    def test_nested_scheduling_keeps_order(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(5, lambda: seen.append(("inner", sim.now)))

        sim.schedule(10, outer)
        sim.run()
        assert seen == [("outer", 10), ("inner", 15)]
