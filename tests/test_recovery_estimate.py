"""The Section 5.5 analytic recovery model (repro/recovery/estimate.py)."""

from __future__ import annotations

import pytest

from repro.config import ADRConfig, MiSUDesign, SimConfig
from repro.recovery.estimate import (
    BLOCK_READ_CYCLES,
    DRAIN_ENTRY_CYCLES,
    MAC_BLOCKS,
    PAD_GEN_CYCLES,
    estimate_recovery,
)

ALL_DESIGNS = (
    MiSUDesign.FULL_WPQ,
    MiSUDesign.PARTIAL_WPQ,
    MiSUDesign.POST_WPQ,
)


def _config(design: MiSUDesign, budget: int = 16) -> SimConfig:
    return SimConfig().with_(
        misu_design=design, adr=ADRConfig(budget_entries=budget)
    )


class TestPaperNumbers:
    def test_full_wpq_matches_the_quoted_44480(self):
        est = estimate_recovery(_config(MiSUDesign.FULL_WPQ))
        assert est.entries == 16
        assert est.read_cycles == 600 * 16
        assert est.old_pad_cycles == 40 * 16
        assert est.drain_cycles == 2100 * 16
        assert est.new_pad_cycles == 40 * 16
        assert est.total_cycles == 44480

    @pytest.mark.parametrize(
        "design,entries,total",
        [
            (MiSUDesign.PARTIAL_WPQ, 13, 37340),
            (MiSUDesign.POST_WPQ, 10, 29000),
        ],
    )
    def test_split_designs_recover_fewer_entries(self, design, entries, total):
        est = estimate_recovery(_config(design))
        assert est.entries == entries
        assert est.total_cycles == total

    def test_default_budget_recovery_is_about_ten_microseconds(self):
        # The paper quotes ~0.01 ms at 4 GHz for the Full-WPQ image.
        est = estimate_recovery(_config(MiSUDesign.FULL_WPQ))
        assert est.total_ms() == pytest.approx(0.0111, rel=0.01)


class TestModelStructure:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_total_is_the_sum_of_its_components(self, design):
        est = estimate_recovery(_config(design))
        assert est.total_cycles == (
            est.read_cycles
            + est.old_pad_cycles
            + est.drain_cycles
            + est.new_pad_cycles
        )

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_component_arithmetic(self, design):
        est = estimate_recovery(_config(design))
        extra = 0 if design is MiSUDesign.FULL_WPQ else MAC_BLOCKS
        assert est.read_cycles == BLOCK_READ_CYCLES * (est.entries + extra)
        assert est.old_pad_cycles == PAD_GEN_CYCLES * est.entries
        assert est.new_pad_cycles == PAD_GEN_CYCLES * est.entries
        assert est.drain_cycles == DRAIN_ENTRY_CYCLES * est.entries

    def test_mac_blocks_only_charged_to_split_designs(self):
        # Full-WPQ stores MACs inside the entries; Partial/Post read
        # two extra 64 B MAC blocks with the image.
        full = estimate_recovery(_config(MiSUDesign.FULL_WPQ))
        partial = estimate_recovery(_config(MiSUDesign.PARTIAL_WPQ))
        assert full.read_cycles == BLOCK_READ_CYCLES * full.entries
        assert partial.read_cycles == BLOCK_READ_CYCLES * (
            partial.entries + MAC_BLOCKS
        )

    def test_total_ms_scales_inversely_with_frequency(self):
        est = estimate_recovery(_config(MiSUDesign.PARTIAL_WPQ))
        assert est.total_ms(2.0) == pytest.approx(2.0 * est.total_ms(4.0))
        assert est.total_ms(4.0) == pytest.approx(
            est.total_cycles / 4e9 * 1e3
        )


class TestBudgetScaling:
    @pytest.mark.parametrize("budget", [16, 32, 64, 128])
    def test_entries_track_the_usable_adr_budget(self, budget):
        for design in ALL_DESIGNS:
            config = _config(design, budget)
            est = estimate_recovery(config)
            assert est.entries == config.adr.usable_entries(design)

    def test_recovery_time_grows_with_the_budget(self):
        for design in ALL_DESIGNS:
            totals = [
                estimate_recovery(_config(design, budget)).total_cycles
                for budget in (16, 32, 64, 128)
            ]
            assert totals == sorted(totals)
            assert len(set(totals)) == len(totals)
