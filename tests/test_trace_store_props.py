"""Property tests for the persistent trace cache.

Two guarantees the parallel experiment engine leans on:

* the cache key digest is injective over the full identity tuple
  (workload, transactions, payload, seed, generator-version) — two
  distinct identities may never share an on-disk entry;
* racing writers of the *same* key are safe: every writer produces a
  complete archive with identical member bytes, and the atomic rename
  means readers only ever observe one whole file.
"""

import threading
import zipfile

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.harness import trace_store as trace_store_module
from repro.harness.trace_store import TraceCache, TraceStore
from repro.workloads import generate_trace


def _digest(workload, transactions, payload, seed, generator_version):
    """TraceStore.digest under a pinned generator version.

    ``GENERATOR_VERSION`` is imported into the trace_store namespace, so
    swapping the module attribute is exactly what a real version bump
    does to the digest.
    """
    previous = trace_store_module.GENERATOR_VERSION
    trace_store_module.GENERATOR_VERSION = generator_version
    try:
        return TraceStore.digest((workload, transactions, payload, seed))
    finally:
        trace_store_module.GENERATOR_VERSION = previous


_identities = st.tuples(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=16,
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=1000),
)


@given(a=_identities, b=_identities)
@settings(max_examples=200, deadline=None)
def test_distinct_identities_never_collide(a, b):
    """Distinct (workload, tx, payload, seed, generator-version) tuples
    must map to distinct cache digests — including tricky cases like
    workload names that embed digits or separators mimicking another
    tuple's rendering."""
    assume(a != b)
    assert _digest(*a) != _digest(*b)


@given(version_a=st.integers(0, 100), version_b=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_generator_version_bump_invalidates(version_a, version_b):
    assume(version_a != version_b)
    key = ("hashmap", 10, 1024, 0)
    assert _digest(*key, version_a) != _digest(*key, version_b)


def _archive_members(path):
    with zipfile.ZipFile(path) as archive:
        return {name: archive.read(name) for name in archive.namelist()}


def test_concurrent_writers_of_same_key_converge(tmp_path):
    """Eight threads race to store the same key: no writer may error, no
    temp file may survive, exactly one complete entry must exist, and it
    must load back as the canonical trace."""
    key = ("synthetic", 2, 64, 0)
    trace = generate_trace(*key)
    store = TraceStore(tmp_path)
    barrier = threading.Barrier(8)
    errors = []

    def writer():
        try:
            barrier.wait(timeout=30)
            store.store(key, trace)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    files = list(tmp_path.iterdir())
    assert len(files) == 1, f"expected one entry, found {files}"
    assert not files[0].name.startswith(".tmp-")
    assert store.load(key) == trace


# ----------------------------------------------------------------------
# Digest-verified load: arbitrary on-disk corruption never escapes.
# ----------------------------------------------------------------------
_KEY = ("synthetic", 2, 64, 0)


def _corruptions():
    """Ways a cache entry can rot on disk."""
    flips = st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000), st.binary(min_size=1, max_size=1)),
        min_size=1,
        max_size=8,
    )
    return st.one_of(
        flips.map(lambda f: ("flip", f)),
        st.integers(min_value=0, max_value=200).map(lambda n: ("truncate", n)),
        st.binary(min_size=0, max_size=64).map(lambda b: ("replace", b)),
    )


@given(corruption=_corruptions())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_corrupted_entry_always_regenerates_original(tmp_path, corruption):
    """The self-healing property: whatever bytes an attacker (or a bad
    disk) leaves in a cache entry, ``TraceCache.get`` returns the
    canonical trace — the payload digest rejects the rotten file and
    the entry is regenerated, never surfaced."""
    root = tmp_path / "cache"
    canonical = TraceCache(root).get(*_KEY)
    path = TraceStore(root).path_for(_KEY)
    if not path.exists():  # a previous example quarantined it
        TraceCache(root).get(*_KEY)
    raw = bytearray(path.read_bytes())

    mode, payload = corruption
    if mode == "flip":
        for offset, value in payload:
            raw[offset % len(raw)] = value[0]
        path.write_bytes(bytes(raw))
    elif mode == "truncate":
        path.write_bytes(bytes(raw[: payload % len(raw)]))
    else:
        path.write_bytes(payload)

    reloaded = TraceCache(root).get(*_KEY)
    assert reloaded == canonical


def test_corrupt_entry_is_quarantined_and_regenerated(tmp_path):
    """A rotten entry is moved into quarantine/ (kept for forensics),
    counted, and transparently regenerated in place."""
    cache = TraceCache(tmp_path)
    trace = cache.get(*_KEY)
    path = cache.store.path_for(_KEY)
    path.write_bytes(b"\x00" * 32)

    fresh = TraceCache(tmp_path)
    assert fresh.get(*_KEY) == trace
    assert fresh.store.quarantined == 1
    assert fresh.store.misses == 1
    quarantined = list((tmp_path / TraceStore.QUARANTINE_DIR).iterdir())
    assert [p.name for p in quarantined] == [path.name]
    # The regenerated entry is valid again: next load is a digest-clean hit.
    warm = TraceCache(tmp_path)
    assert warm.get(*_KEY) == trace
    assert warm.store.hits == 1 and warm.store.quarantined == 0


def test_wrong_payload_digest_rejected(tmp_path):
    """An entry whose header vouches for different payload bytes (e.g.
    a stale or swapped file) is treated as corrupt."""
    store = TraceStore(tmp_path)
    trace = generate_trace(*_KEY)
    store.store(_KEY, trace)
    path = store.path_for(_KEY)

    # Forge an entry for the same key whose payload digest lies.
    original = TraceStore.__dict__["payload_digest"]
    try:
        TraceStore.payload_digest = staticmethod(lambda t: "forged")
        store.store(_KEY, trace)
    finally:
        TraceStore.payload_digest = original

    fresh = TraceStore(tmp_path)
    assert fresh.load(_KEY) is None
    assert fresh.quarantined == 1
    assert not path.exists()


def test_same_key_writes_identical_bytes(tmp_path):
    """Two independent writers of the same (key, trace) produce archives
    whose members are byte-identical — the property that makes the
    last-rename-wins race benign (zip container timestamps excluded;
    they are metadata the loader never reads)."""
    key = ("synthetic", 2, 64, 0)
    trace = generate_trace(*key)
    store_a = TraceStore(tmp_path / "a")
    store_b = TraceStore(tmp_path / "b")
    path_a = store_a.store(key, trace)
    path_b = store_b.store(key, trace)
    assert path_a.name == path_b.name
    assert _archive_members(path_a) == _archive_members(path_b)
