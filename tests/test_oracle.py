"""Tests for the differential crash-consistency oracle.

The fast tests here are tier-1 (every ``pytest -x -q`` run); the
exhaustive 200-transaction sweep over every matrix controller configuration
is marked ``oracle`` (and ``slow``) and runs via ``make check-oracle``
or ``pytest -m oracle``.
"""

import json

import pytest

from repro.config import ControllerKind, MiSUDesign, TreeUpdateScheme
from repro.oracle import (
    CONTROLLER_MATRIX,
    OracleDivergence,
    check_unit,
    controller_matrix,
    enumerate_sites,
    generate_ops,
    machine_state_hash,
    make_golden,
    prefix_states,
    run_oracle,
)
from repro.oracle.check import _select_sites, main as check_main
from repro.persistence.commitlog import (
    OP_DEL,
    OP_PUT,
    CommitDecodeError,
    CommitRecord,
    record_address,
    value_checksum,
)
from repro.workloads import ALL_WORKLOADS, ORACLE_SEMANTICS


class TestCommitLog:
    def test_roundtrip(self):
        record = CommitRecord(7, OP_PUT, 123, 0x3_0000_0040, 128,
                              value_checksum(b"x" * 128))
        line = record.encode()
        assert len(line) == 64
        assert CommitRecord.decode(line) == record

    def test_decode_rejects_garbage(self):
        with pytest.raises(CommitDecodeError):
            CommitRecord.decode(b"\x00" * 64)
        with pytest.raises(CommitDecodeError):
            CommitRecord.decode(b"short")

    def test_record_addresses_are_distinct_lines(self):
        addresses = {record_address(seq) for seq in range(100)}
        assert len(addresses) == 100
        assert all(a % 64 == 0 for a in addresses)


class TestOpsAndGolden:
    def test_every_workload_has_semantics(self):
        assert set(ORACLE_SEMANTICS) == set(ALL_WORKLOADS)

    def test_ops_deterministic_per_seed(self):
        assert generate_ops("hashmap", 30, 1) == generate_ops("hashmap", 30, 1)
        assert generate_ops("hashmap", 30, 1) != generate_ops("hashmap", 30, 2)

    def test_tree_ops_differ_from_dict_ops(self):
        assert generate_ops("btree", 30, 0) != generate_ops("hashmap", 30, 0)

    def test_prefix_states_lengths(self):
        ops = generate_ops("btree", 20, 0)
        states = prefix_states("tree", ops)
        assert len(states) == 21
        assert states[0] == {}

    def test_golden_del_removes(self):
        from repro.oracle.ops import Op

        model = make_golden("dict")
        model.apply(Op(0, OP_PUT, 5, b"v"))
        model.apply(Op(1, OP_DEL, 5, b""))
        assert model.state() == {}


class TestSiteEnumeration:
    def test_sites_distinct_and_ordered(self):
        cfg = controller_matrix()["dolos-partial"]
        ops = generate_ops("hashmap", 6, 0)
        enum = enumerate_sites(cfg, ops)
        cycles = [site.cycle for site in enum.sites]
        assert cycles == sorted(cycles)
        hashes = [site.state_hash for site in enum.sites[:-1]]
        # Deduplicated: no two *consecutive* sites share a state.
        assert all(a != b for a, b in zip(hashes, hashes[1:]))
        assert enum.sites[-1].kind == "quiescent"
        assert enum.commits_fired == len(ops)

    def test_state_hash_changes_with_writes(self):
        from repro.core.controller import DolosController
        from repro.core.requests import WriteKind, WriteRequest
        from repro.engine import Simulator

        cfg = controller_matrix()["dolos-partial"]
        sim = Simulator()
        controller = DolosController(sim, cfg)
        controller.start()
        before = machine_state_hash(controller)
        controller.submit_write(
            WriteRequest(0x1_0000_0000, WriteKind.PERSIST, data=b"\x11" * 64)
        )
        sim.run()
        assert machine_state_hash(controller) != before

    def test_select_sites_keeps_ends(self):
        cfg = controller_matrix()["dolos-partial"]
        ops = generate_ops("hashmap", 6, 0)
        enum = enumerate_sites(cfg, ops)
        picked = _select_sites(enum.sites, 5)
        assert len(picked) == 5
        assert picked[0] is enum.sites[0]
        assert picked[-1] is enum.sites[-1]
        assert _select_sites(enum.sites, None) == enum.sites


class TestOracleMatrix:
    def test_matrix_covers_designs_and_controllers(self):
        matrix = controller_matrix()
        assert set(CONTROLLER_MATRIX) == set(matrix)
        designs = {cfg.misu_design for cfg in matrix.values()
                   if cfg.controller is ControllerKind.DOLOS}
        assert designs == {
            MiSUDesign.FULL_WPQ, MiSUDesign.PARTIAL_WPQ, MiSUDesign.POST_WPQ,
        }
        kinds = {cfg.controller for cfg in matrix.values()}
        assert ControllerKind.EADR_SECURE in kinds
        schemes = {cfg.security.tree_update for cfg in matrix.values()
                   if cfg.controller is ControllerKind.PRE_WPQ_SECURE}
        assert schemes == {TreeUpdateScheme.EAGER, TreeUpdateScheme.LAZY}


class TestCheckFast:
    """Small-trace sweeps that keep the oracle guarded in tier 1."""

    @pytest.mark.parametrize("label", ["dolos-partial", "prewpq-eager", "eadr"])
    def test_small_unit_passes(self, label):
        unit = check_unit(
            "hashmap", label, controller_matrix()[label], 6, site_budget=12,
        )
        assert unit.passed, unit.failures
        assert unit.sites_checked == 12
        assert unit.attacks_run >= 1
        assert unit.attacks_detected == unit.attacks_run

    def test_injected_divergence_is_caught(self):
        report = run_oracle(
            ["hashmap"], ["dolos-partial"], transactions=6,
            site_budget=4, inject_divergence=True,
        )
        assert report.passed
        assert report.units[0].injected_caught is True

    def test_cli_smoke_writes_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = check_main([
            "--workloads", "hashmap",
            "--controllers", "dolos-partial,eadr",
            "--transactions", "6",
            "--site-budget", "6",
            "--report", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["passed"] is True
        assert len(payload["units"]) == 2
        assert "ORACLE PASS" in capsys.readouterr().out

    def test_divergent_recovery_fails_unit(self):
        """A checker that cannot fail is no oracle: force a state diff
        by corrupting the golden prefix states."""
        cfg = controller_matrix()["dolos-partial"]
        ops = generate_ops("hashmap", 4, 0)
        states = prefix_states("dict", ops)
        states[-1] = {999: b"not what was written"}
        from repro.oracle.check import check_site
        from repro.oracle.sites import enumerate_sites as enum_fn

        enum = enum_fn(cfg, ops)
        with pytest.raises(OracleDivergence):
            check_site(cfg, ops, states, enum.sites[-1], battery=False)


@pytest.mark.oracle
@pytest.mark.slow
@pytest.mark.parametrize("workload", ["hashmap", "btree"])
@pytest.mark.parametrize("label", sorted(CONTROLLER_MATRIX))
def test_full_sweep_200tx(workload, label):
    """The acceptance sweep: every enumerated crash site, 200
    transactions, every matrix controller configuration, attacks on every
    4th site — no recovery failure, no golden-model divergence, 100%
    attack detection."""
    unit = check_unit(
        workload, label, controller_matrix()[label], 200, attack_every=4,
    )
    assert unit.passed, unit.failures[:5]
    assert unit.sites_checked == unit.sites_enumerated
    assert unit.attacks_detected == unit.attacks_run > 0
