"""Property-based tests for the open-loop scenario generators (PR 10).

Hypothesis sweeps the generator invariants the characterization suite
builds on: seeded determinism (bit-identical streams and
interleavings), the Poisson rate contract (empirical inter-arrival
mean inside a generous CI of ``1000/rate``), the skew dial's uniform
degeneration at ``s = 0``, and the tenant merge's per-tenant
order stability.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import OP_ARRIVAL, unpack_arrival
from repro.scenarios import (
    MMPPArrivals,
    PoissonArrivals,
    SkewedRandom,
    TenantSpec,
    build_scenario_trace,
    build_tenant_stream,
    make_arrivals,
    merge_tenant_streams,
)

rates = st.floats(min_value=0.005, max_value=2.0)
seeds = st.integers(0, 2**31)
counts = st.integers(1, 300)
bursts = st.floats(min_value=1.05, max_value=1.95)


# ----------------------------------------------------------------------
# Seeded determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(rate=rates, seed=seeds, n=counts)
    def test_poisson_same_seed_bit_identical(self, rate, seed, n):
        a = PoissonArrivals(rate).sample(n, seed)
        b = PoissonArrivals(rate).sample(n, seed)
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(rate=rates, seed=seeds, n=counts, burst=bursts)
    def test_mmpp_same_seed_bit_identical(self, rate, seed, n, burst):
        a = MMPPArrivals(rate, burst=burst).sample(n, seed)
        b = MMPPArrivals(rate, burst=burst).sample(n, seed)
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(rate=rates, seed=seeds, n=counts)
    def test_arrivals_are_sorted_non_negative_ints(self, rate, seed, n):
        arrivals = PoissonArrivals(rate).sample(n, seed)
        assert len(arrivals) == n
        assert all(isinstance(cycle, int) and cycle >= 0 for cycle in arrivals)
        assert arrivals == sorted(arrivals)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_scenario_trace_same_seed_bit_identical(self, seed):
        tenants = [
            TenantSpec("hashmap", 0.05, skew=0.8),
            TenantSpec("synthetic", 0.08, arrivals="mmpp"),
        ]
        a = build_scenario_trace(tenants, 6, 256, seed)
        b = build_scenario_trace(tenants, 6, 256, seed)
        assert a == b

    def test_make_arrivals_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arrivals("uniform", 0.1)


# ----------------------------------------------------------------------
# The Poisson rate contract
# ----------------------------------------------------------------------
class TestPoissonRate:
    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=0.01, max_value=1.0), seed=seeds)
    def test_mean_inter_arrival_tracks_rate(self, rate, seed):
        """Empirical mean gap within ±4 standard errors of 1000/rate.

        Exponential gaps have sigma = mean, so the standard error over
        n samples is ``mean / sqrt(n)``; a 4-sigma band keeps the
        false-failure odds negligible across the Hypothesis sweep
        while still pinning the generator to its nominal rate.
        """
        n = 900
        arrivals = PoissonArrivals(rate).sample(n, seed)
        mean_gap = arrivals[-1] / (n - 1)
        expected = 1000.0 / rate
        tolerance = 4.0 * expected / (n - 1) ** 0.5
        assert abs(mean_gap - expected) < tolerance

    @settings(max_examples=15, deadline=None)
    @given(rate=st.floats(min_value=0.01, max_value=1.0), seed=seeds,
           burst=bursts)
    def test_mmpp_preserves_long_run_rate(self, rate, seed, burst):
        """Hot/cold rates average to the nominal rate (±8 sigma: the
        modulation adds variance beyond the exponential's)."""
        n = 1200
        arrivals = MMPPArrivals(rate, burst=burst).sample(n, seed)
        mean_gap = arrivals[-1] / (n - 1)
        expected = 1000.0 / rate
        assert abs(mean_gap - expected) < 8.0 * expected / (n - 1) ** 0.5

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n=st.integers(16, 200))
    def test_same_seed_scales_across_rates(self, seed, n):
        """One seeded gap sequence, scaled by 1/rate: the heavy-load
        stream is a pure compression of the light-load stream (this is
        what makes the loadcurve's p99 monotone in offered load)."""
        slow = PoissonArrivals(0.05).sample(n, seed)
        fast = PoissonArrivals(0.10).sample(n, seed)
        assert all(f <= s for s, f in zip(slow, fast))


# ----------------------------------------------------------------------
# The skew dial
# ----------------------------------------------------------------------
class TestSkewDial:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, n=st.integers(1, 2**21))
    def test_s_zero_is_exactly_uniform(self, seed, n):
        """``s = 0`` degenerates to floor(u * n) of the same stream —
        bit-identical to what a plain Random would pick."""
        skewed = SkewedRandom(seed, s=0.0)
        plain = random.Random(seed)
        draws = [skewed.randrange(n) for _ in range(50)]
        expected = [int(plain.random() * n) for _ in range(50)]
        assert draws == expected

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, s=st.floats(min_value=0.0, max_value=3.0),
           n=st.integers(1, 2**21))
    def test_draws_stay_in_range(self, seed, s, n):
        rng = SkewedRandom(seed, s=s)
        for _ in range(60):
            assert 0 <= rng.randrange(n) < n

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_higher_skew_concentrates_low_ranks(self, seed):
        n, draws = 1 << 20, 600
        flat = SkewedRandom(seed, s=0.0)
        skewed = SkewedRandom(seed, s=1.2)
        flat_low = sum(flat.randrange(n) < n // 100 for _ in range(draws))
        skew_low = sum(skewed.randrange(n) < n // 100 for _ in range(draws))
        assert skew_low > flat_low

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            SkewedRandom(1, s=-0.5)

    def test_randrange_with_start_and_step(self):
        rng = SkewedRandom(7, s=1.1)
        for _ in range(40):
            value = rng.randrange(100, 200, 5)
            assert 100 <= value < 200 and (value - 100) % 5 == 0


# ----------------------------------------------------------------------
# Tenant merge stability
# ----------------------------------------------------------------------
class TestMergeStability:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_merge_preserves_per_tenant_order(self, seed):
        """The interleaving is a stable merge: each tenant's blocks
        appear in exactly their original (arrival-stamped) order."""
        streams = [
            build_tenant_stream(TenantSpec("hashmap", 0.05), 0, 5, seed=seed),
            build_tenant_stream(TenantSpec("synthetic", 0.10), 1, 5, seed=seed),
        ]
        originals = {
            tenant: [block.ops for block in stream]
            for tenant, stream in enumerate(streams)
        }
        merged = merge_tenant_streams(streams)
        seen: dict = {tenant: [] for tenant in originals}
        current = None
        for op in merged:
            if op[0] == OP_ARRIVAL:
                current, _ = unpack_arrival(op[1])
                seen[current].append([op])
            else:
                seen[current][-1].append(op)
        assert {
            tenant: [tuple(ops) for ops in blocks]
            for tenant, blocks in seen.items()
        } == {
            tenant: [tuple(ops) for ops in blocks]
            for tenant, blocks in originals.items()
        }

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_merged_arrival_stamps_are_sorted(self, seed):
        streams = [
            build_tenant_stream(TenantSpec("hashmap", 0.07), 0, 4, seed=seed),
            build_tenant_stream(TenantSpec("synthetic", 0.07), 1, 4, seed=seed),
        ]
        merged = merge_tenant_streams(streams)
        stamps = [
            unpack_arrival(op[1])[1]
            for op in merged
            if op[0] == OP_ARRIVAL
        ]
        assert stamps == sorted(stamps)

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds)
    def test_trace_stamps_attribute_the_right_tenant(self, seed):
        tenants = [TenantSpec("hashmap", 0.05), TenantSpec("synthetic", 0.05)]
        trace = build_scenario_trace(tenants, 4, 256, seed)
        stamped = [
            unpack_arrival(op[1]) for op in trace if op[0] == OP_ARRIVAL
        ]
        assert {tenant for tenant, _ in stamped} == {0, 1}
