"""Tests for the ADR drain path and energy accounting."""

import pytest

from repro.config import ADRConfig, MiSUDesign, SimConfig
from repro.core.misu import make_misu
from repro.core.registers import PersistentRegisters
from repro.core.requests import WriteKind, WriteRequest
from repro.crypto.keys import KeyStore
from repro.wpq.adr import ADRBudgetError, ADRDrain
from repro.wpq.queue import WritePendingQueue


def build(design, line_factory, entries=3):
    """A WPQ with ``entries`` protected entries under ``design``."""
    config = SimConfig().with_(misu_design=design)
    keys = KeyStore(7)
    registers = PersistentRegisters()
    wpq = WritePendingQueue(config.wpq_entries)
    misu = make_misu(config, keys, registers, wpq)
    for i in range(entries):
        data = line_factory(f"entry{i}")
        entry = wpq.try_allocate(
            WriteRequest(0x1000 + i * 64, WriteKind.PERSIST, data=data)
        )
        misu.protect(entry)
        entry.protected = True
    return config, keys, registers, wpq, misu


class TestEnergyAccounting:
    def test_full_design_costs_entries_only(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.FULL_WPQ, line_factory, 4)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.FULL_WPQ)
        assert drain.energy_needed(wpq, 0) == 4

    def test_partial_design_adds_mac_flushes(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.PARTIAL_WPQ, line_factory, 8)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.PARTIAL_WPQ)
        assert drain.energy_needed(wpq, 0) == 8 + 1

    def test_post_design_adds_deferred_cost(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.POST_WPQ, line_factory, 4)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.POST_WPQ)
        base = drain.energy_needed(wpq, 0)
        assert drain.energy_needed(wpq, 1) == base + config.adr.deferred_mac_entry_cost

    def test_full_queue_fits_budget(self, nvm, line_factory):
        """The design-sized queues must always be drainable — the core
        invariant behind the 16/13/10 sizing."""
        for design in MiSUDesign:
            config, _, _, wpq, misu = build(
                design, line_factory, entries=config_entries(design)
            )
            drain = ADRDrain(nvm, config.adr, design)
            pending = 1 if design is MiSUDesign.POST_WPQ else 0
            assert drain.energy_needed(wpq, pending) <= config.adr.budget_entries

    def test_overflow_raises(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.PARTIAL_WPQ, line_factory, 13)
        tiny = ADRConfig(budget_entries=4)
        drain = ADRDrain(nvm, tiny, MiSUDesign.PARTIAL_WPQ)
        with pytest.raises(ADRBudgetError):
            drain.drain(wpq)


def config_entries(design):
    return SimConfig().with_(misu_design=design).wpq_entries


class TestDrainAndReadBack:
    def test_drain_writes_image(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.PARTIAL_WPQ, line_factory, 3)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.PARTIAL_WPQ)
        records = drain.drain(wpq)
        assert len(records) == 3
        assert all(r.mac is not None for r in records)

    def test_full_design_has_no_mac_records(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.FULL_WPQ, line_factory, 3)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.FULL_WPQ)
        drain.drain(wpq)
        read = drain.read_image()
        assert all(r.mac is None for r in read)

    def test_read_image_roundtrip(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.PARTIAL_WPQ, line_factory, 3)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.PARTIAL_WPQ)
        records = drain.drain(wpq)
        read = drain.read_image()
        assert len(read) == len(records)
        by_slot = {r.slot: r for r in records}
        for record in read:
            original = by_slot[record.slot]
            assert record.ciphertext == original.ciphertext
            assert record.pad_counter == original.pad_counter
            assert record.cleared == original.cleared
            assert record.mac == original.mac

    def test_read_image_empty_without_drain(self, nvm):
        drain = ADRDrain(nvm, ADRConfig(), MiSUDesign.PARTIAL_WPQ)
        assert drain.read_image() == []

    def test_clear_image(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.PARTIAL_WPQ, line_factory, 2)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.PARTIAL_WPQ)
        drain.drain(wpq)
        drain.clear_image()
        assert drain.read_image() == []

    def test_cleared_entries_flagged(self, nvm, line_factory):
        config, _, _, wpq, _ = build(MiSUDesign.PARTIAL_WPQ, line_factory, 2)
        entry = wpq.oldest_pending()
        wpq.begin_fetch(entry)
        wpq.mark_cleared(entry)
        drain = ADRDrain(nvm, config.adr, MiSUDesign.PARTIAL_WPQ)
        records = drain.drain(wpq)
        flags = {r.slot: r.cleared for r in records}
        assert flags[entry.index] is True
