"""Tests for the statistics registry."""

import pytest

from repro.stats import Histogram, StatsRegistry


class TestCounters:
    def test_add_and_get(self):
        stats = StatsRegistry()
        stats.add("a")
        stats.add("a", 4)
        assert stats.get("a") == 5

    def test_missing_default(self):
        assert StatsRegistry().get("nope") == 0
        assert StatsRegistry().get("nope", 7) == 7

    def test_set_overwrites(self):
        stats = StatsRegistry()
        stats.add("a", 3)
        stats.set("a", 1)
        assert stats.get("a") == 1

    def test_ratio(self):
        stats = StatsRegistry()
        stats.add("hits", 3)
        stats.add("total", 4)
        assert stats.ratio("hits", "total") == 0.75
        assert stats.ratio("hits", "zero") == 0.0

    def test_as_dict(self):
        stats = StatsRegistry()
        stats.add("x", 2)
        assert stats.as_dict() == {"x": 2}


class TestHistogram:
    def test_record_and_mean(self):
        hist = Histogram()
        for value in (1, 2, 3):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == 2.0
        assert hist.min_value == 1
        assert hist.max_value == 3

    def test_weighted_record(self):
        hist = Histogram()
        hist.record(10, weight=5)
        assert hist.count == 5
        assert hist.mean == 10.0

    def test_percentile(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.record(value)
        assert hist.percentile(0.5) == 50
        assert hist.percentile(1.0) == 100

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.percentile(0.5) == 0


class TestScopes:
    def test_scope_prefixes(self):
        stats = StatsRegistry()
        scope = stats.scope("wpq")
        scope.add("retries", 2)
        assert stats.get("wpq.retries") == 2
        assert scope.get("retries") == 2

    def test_nested_scope(self):
        stats = StatsRegistry()
        inner = stats.scope("a").scope("b")
        inner.add("c")
        assert stats.get("a.b.c") == 1

    def test_scope_histogram(self):
        stats = StatsRegistry()
        stats.scope("core").record("tx", 5)
        assert stats.histogram("core.tx").count == 1

    def test_dump_renders_everything(self):
        stats = StatsRegistry()
        stats.add("counter", 1)
        stats.record("hist", 2)
        text = stats.dump()
        assert "counter" in text
        assert "hist" in text


class TestHistogramWeightEdgeCases:
    """Regression: zero/negative weights must not corrupt the summary."""

    def test_zero_weight_is_a_noop(self):
        hist = Histogram()
        hist.record(5)
        hist.record(999, weight=0)
        hist.record(-7, weight=0)
        assert hist.count == 1
        assert hist.min_value == 5
        assert hist.max_value == 5
        assert 999 not in hist.buckets
        assert -7 not in hist.buckets
        assert hist.percentile(1.0) == 5

    def test_zero_weight_on_empty_histogram(self):
        hist = Histogram()
        hist.record(42, weight=0)
        assert hist.count == 0
        assert hist.min_value is None
        assert hist.max_value is None
        assert hist.buckets == {}

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Histogram().record(1, weight=-1)

    def test_percentile_edge_semantics(self):
        hist = Histogram()
        for value in (3, 9, 27):
            hist.record(value)
        assert hist.percentile(0.0) == 3
        assert hist.percentile(1.0) == 27

    def test_percentile_edges_empty(self):
        assert Histogram().percentile(0.0) == 0
        assert Histogram().percentile(1.0) == 0
