"""Corner-case tests for controller interactions.

These cover the interleavings the main suites don't: reads racing
drains, coalescing vs in-flight entries, eviction/persist mixing,
timelines of persist completion, and cross-controller determinism.
"""

import pytest

from repro.config import ControllerKind, MiSUDesign, SimConfig
from repro.core.controller import DolosController, make_controller
from repro.core.requests import WriteKind, WriteRequest
from repro.engine import Simulator

HEAP = 0x1_0000_0000


def build(kind=ControllerKind.DOLOS, **changes):
    config = SimConfig().with_(controller=kind, **changes)
    sim = Simulator()
    return sim, make_controller(sim, config)


class TestReadsVsWrites:
    def test_read_hits_wpq_before_drain(self):
        sim, controller = build()
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        sim.run(until=200)  # entry inserted, not yet drained
        latencies = []
        controller.read(HEAP).subscribe(latencies.append)
        sim.run(until=300)
        assert latencies and latencies[0] <= 2
        assert controller.wpq.read_hits == 1

    def test_read_after_drain_goes_to_nvm(self):
        sim, controller = build()
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        sim.run()  # fully drained, tag removed
        latencies = []
        controller.read(HEAP).subscribe(latencies.append)
        sim.run()
        assert latencies[0] >= controller.config.nvm.read_latency

    def test_read_does_not_hit_in_flight_cleared_entry(self):
        """Once drained, the tag is gone even though the slot content
        is architecturally retained for the WPQ tree."""
        sim, controller = build()
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        sim.run()
        assert controller.wpq.lookup(HEAP) is None

    def test_many_reads_same_address_all_complete(self):
        sim, controller = build()
        done = []
        for _ in range(10):
            controller.read(HEAP + 0x100000).subscribe(done.append)
        sim.run()
        assert len(done) == 10


class TestCoalescingCorners:
    def test_coalesce_blocked_by_in_flight_allocates_new_slot(self):
        sim, controller = build()
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        # Let the Ma-SU pick it up (in_flight), then write again.
        sim.run(until=400)
        first_inserts = controller.wpq.inserts
        controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        sim.run()
        assert controller.wpq.inserts == first_inserts + 1

    def test_burst_of_same_address_coalesces_heavily(self):
        sim, controller = build()
        completed = []
        for _ in range(10):
            done = controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
            done.subscribe(lambda _v: completed.append(1))
        sim.run()
        assert len(completed) == 10
        # Far fewer slots consumed than writes submitted.
        assert controller.wpq.inserts < 5
        assert controller.wpq.coalesced >= 5

    def test_masu_processes_each_slot_once(self):
        sim, controller = build()
        for _ in range(10):
            controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST))
        sim.run()
        assert (
            controller.stats.get("masu.writes")
            == controller.wpq.inserts
        )


class TestMixedTraffic:
    def test_evictions_and_persists_all_drain(self):
        sim, controller = build()
        persists = []
        for i in range(10):
            kind = WriteKind.PERSIST if i % 2 else WriteKind.EVICTION
            done = controller.submit_write(WriteRequest(HEAP + i * 64, kind))
            if done is not None:
                done.subscribe(lambda _v: persists.append(1))
        sim.run()
        assert len(persists) == 5
        assert controller.stats.get("masu.writes") == 10

    def test_conservation_submitted_equals_processed(self):
        """No write is lost or double-processed across the WPQ."""
        sim, controller = build()
        for i in range(50):
            controller.submit_write(
                WriteRequest(HEAP + i * 64, WriteKind.PERSIST)
            )
        sim.run()
        assert controller.writes_received == 50
        assert controller.stats.get("persist.completed") == 50
        assert controller.stats.get("masu.writes") == controller.wpq.inserts
        assert controller.wpq.is_empty

    def test_baseline_conservation(self):
        sim, controller = build(ControllerKind.PRE_WPQ_SECURE)
        for i in range(30):
            controller.submit_write(
                WriteRequest(HEAP + i * 64, WriteKind.PERSIST)
            )
        sim.run()
        assert controller.stats.get("persist.completed") == 30
        assert controller.stats.get("wpq.drained") == 30


class TestPersistCompletionOrder:
    def test_distinct_addresses_complete_in_submission_order(self):
        sim, controller = build()
        order = []
        for i in range(8):
            done = controller.submit_write(
                WriteRequest(HEAP + i * 64, WriteKind.PERSIST)
            )
            done.subscribe(lambda _v, i=i: order.append(i))
        sim.run()
        assert order == sorted(order)

    def test_post_wpq_single_deferred_invariant(self):
        """At no instant may two entries be mac_pending (Section 4.3)."""
        sim, controller = build(misu_design=MiSUDesign.POST_WPQ)
        violations = []

        def check():
            pending = sum(1 for e in controller.wpq.entries if e.mac_pending)
            if pending > 1:
                violations.append((sim.now, pending))
            if sim.pending_events:
                sim.schedule(7, check)

        for i in range(20):
            controller.submit_write(
                WriteRequest(HEAP + i * 64, WriteKind.PERSIST)
            )
        sim.schedule(1, check)
        sim.run()
        assert violations == []


class TestDeterminismAcrossControllers:
    @pytest.mark.parametrize("kind", list(ControllerKind))
    def test_every_controller_is_deterministic(self, kind):
        def run_once():
            sim, controller = build(kind)
            completed = []
            for i in range(20):
                done = controller.submit_write(
                    WriteRequest(HEAP + (i % 7) * 64, WriteKind.PERSIST)
                )
                done.subscribe(lambda _v: completed.append(sim.now))
            sim.run()
            return completed

        assert run_once() == run_once()
