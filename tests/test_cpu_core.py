"""Tests for the trace-driven core and trace utilities."""

import pytest

from repro.config import ControllerKind, SimConfig
from repro.core.controller import make_controller
from repro.cpu.core import TraceCore
from repro.cpu.trace import (
    OP_CLWB,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXBEGIN,
    OP_TXEND,
    OP_WORK,
    summarize,
)
from repro.engine import Simulator

HEAP = 0x1_0000_0000


def run_core(trace, kind=ControllerKind.NON_SECURE_IDEAL, **changes):
    config = SimConfig().with_(controller=kind, **changes)
    sim = Simulator()
    controller = make_controller(sim, config)
    core = TraceCore(sim, config, controller, controller.stats)
    core.run(trace)
    sim.run()
    assert core.finished
    return core, controller


class TestSummarize:
    def test_counts(self):
        trace = [
            (OP_TXBEGIN, 0), (OP_WORK, 100), (OP_LOAD, HEAP),
            (OP_STORE, HEAP), (OP_CLWB, HEAP), (OP_FENCE,), (OP_TXEND, 0),
        ]
        summary = summarize(trace)
        assert summary.work_instructions == 100
        assert summary.loads == 1
        assert summary.stores == 1
        assert summary.clwbs == 1
        assert summary.fences == 1
        assert summary.transactions == 1
        assert summary.instructions == 104
        assert summary.flushes_per_tx == 1.0


class TestWorkTiming:
    def test_work_charged_at_ipc(self):
        core, _ = run_core([(OP_WORK, 1000)])
        assert core.cycles == int(1000 / core.config.core.ipc)
        assert core.instructions == 1000

    def test_work_carry_accumulates_fractions(self):
        # 3 instructions at IPC 2 = 1.5 cycles; two batches = 3 cycles.
        core, _ = run_core([(OP_WORK, 3), (OP_WORK, 3)])
        assert core.cycles == 3

    def test_cpi_property(self):
        core, _ = run_core([(OP_WORK, 100)])
        assert core.cpi == pytest.approx(core.cycles / 100)


class TestMemoryOps:
    def test_cache_hit_load_is_cheap(self):
        core, _ = run_core([(OP_LOAD, HEAP), (OP_LOAD, HEAP)])
        # Second load hits L1 (2 cycles); total far below one NVM trip.
        assert core.cycles < 1000

    def test_cold_load_blocks_on_memory(self):
        core, _ = run_core([(OP_LOAD, HEAP)])
        assert core.cycles >= core.config.nvm.read_latency

    def test_store_miss_does_not_block(self):
        core, controller = run_core([(OP_STORE, HEAP)])
        assert core.cycles < core.config.nvm.read_latency
        assert controller.stats.get("core.store_miss_fills") == 1


class TestPersistSemantics:
    def test_clwb_clean_line_is_free(self):
        core, controller = run_core([(OP_LOAD, HEAP), (OP_CLWB, HEAP), (OP_FENCE,)])
        assert controller.stats.get("core.persists_issued") == 0

    def test_clwb_dirty_line_issues_persist(self):
        core, controller = run_core([(OP_STORE, HEAP), (OP_CLWB, HEAP), (OP_FENCE,)])
        assert controller.stats.get("core.persists_issued") == 1
        assert controller.stats.get("persist.completed") == 1

    def test_fence_waits_for_persist(self):
        trace = [(OP_STORE, HEAP), (OP_CLWB, HEAP), (OP_FENCE,)]
        baseline_core, _ = run_core(trace, ControllerKind.PRE_WPQ_SECURE)
        ideal_core, _ = run_core(trace, ControllerKind.NON_SECURE_IDEAL)
        assert baseline_core.cycles > ideal_core.cycles

    def test_fence_without_outstanding_is_cheap(self):
        core, _ = run_core([(OP_FENCE,)])
        assert core.cycles <= 2

    def test_trailing_persists_complete_before_finish(self):
        # No explicit fence: the core still waits for outstanding persists.
        core, controller = run_core([(OP_STORE, HEAP), (OP_CLWB, HEAP)])
        assert controller.stats.get("persist.completed") == 1

    def test_multiple_flushes_pipeline(self):
        stores = [(OP_STORE, HEAP + i * 64) for i in range(8)]
        flushes = [(OP_CLWB, HEAP + i * 64) for i in range(8)]
        core, controller = run_core(stores + flushes + [(OP_FENCE,)])
        assert controller.stats.get("persist.completed") == 8


class TestTransactions:
    def test_tx_stats_recorded(self):
        trace = [
            (OP_TXBEGIN, 0), (OP_WORK, 100), (OP_TXEND, 0),
            (OP_TXBEGIN, 1), (OP_WORK, 100), (OP_TXEND, 1),
        ]
        core, controller = run_core(trace)
        assert controller.stats.get("core.transactions") == 2

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            run_core([(99, 0)])

    def test_double_run_rejected(self):
        config = SimConfig()
        sim = Simulator()
        controller = make_controller(sim, config)
        core = TraceCore(sim, config, controller)
        core.run([(OP_WORK, 1)])
        with pytest.raises(RuntimeError):
            core.run([(OP_WORK, 1)])


class TestDeterminism:
    def test_same_trace_same_cycles(self):
        trace = [(OP_STORE, HEAP + i * 64) for i in range(20)]
        trace += [(OP_CLWB, HEAP + i * 64) for i in range(20)]
        trace += [(OP_FENCE,)]
        first, _ = run_core(list(trace), ControllerKind.DOLOS)
        second, _ = run_core(list(trace), ControllerKind.DOLOS)
        assert first.cycles == second.cycles
