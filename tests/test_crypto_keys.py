"""Tests for the processor key store."""

import pytest

from repro.crypto.keys import KeyStore


class TestKeyStore:
    def test_keys_are_domain_separated(self, keys):
        assert keys.memory_key != keys.mac_key
        assert keys.memory_key != keys.wpq_key
        assert keys.mac_key != keys.wpq_key

    def test_deterministic_per_seed(self):
        a = KeyStore(1)
        b = KeyStore(1)
        assert a.memory_key == b.memory_key
        assert a.wpq_key == b.wpq_key

    def test_different_seeds_differ(self):
        assert KeyStore(1).memory_key != KeyStore(2).memory_key

    def test_wpq_key_rotates_on_boot(self, keys):
        old = keys.wpq_key
        new = keys.rotate_wpq_key()
        assert new != old
        assert keys.wpq_key == new
        assert keys.boot_epoch == 1

    def test_memory_key_stable_across_boots(self, keys):
        before = keys.memory_key
        keys.rotate_wpq_key()
        assert keys.memory_key == before

    def test_old_epoch_key_recoverable(self, keys):
        epoch0 = keys.wpq_key
        keys.rotate_wpq_key()
        assert keys.wpq_key_for_epoch(0) == epoch0

    def test_future_epoch_rejected(self, keys):
        with pytest.raises(ValueError):
            keys.wpq_key_for_epoch(5)

    def test_negative_epoch_rejected(self, keys):
        with pytest.raises(ValueError):
            keys.wpq_key_for_epoch(-1)

    def test_key_length(self, keys):
        assert len(keys.memory_key) == KeyStore.KEY_BYTES
