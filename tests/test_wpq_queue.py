"""Tests for the Write Pending Queue."""

import pytest

from repro.core.requests import WriteKind, WriteRequest
from repro.wpq.queue import WritePendingQueue


def persist(address, data=None):
    return WriteRequest(address, WriteKind.PERSIST, data=data)


@pytest.fixture
def wpq():
    return WritePendingQueue(4)


class TestAllocation:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WritePendingQueue(0)

    def test_allocate_until_full(self, wpq):
        for i in range(4):
            assert wpq.try_allocate(persist(i * 64)) is not None
        assert wpq.is_full
        assert wpq.try_allocate(persist(0x999940)) is None

    def test_fifo_slot_order(self, wpq):
        entries = [wpq.try_allocate(persist(i * 64)) for i in range(3)]
        assert [e.index for e in entries] == [0, 1, 2]

    def test_allocation_preserves_old_content(self, wpq):
        """A reused slot keeps the previous architectural content until
        Mi-SU protection overwrites it (Full-WPQ tree consistency)."""
        entries = [wpq.try_allocate(persist(i * 64)) for i in range(4)]
        first = entries[0]
        first.ciphertext = b"\xaa" * 72
        first.mac = b"\xbb" * 8
        first.protected = True
        first.cleared = False
        wpq.begin_fetch(first)
        wpq.mark_cleared(first)
        # The circular allocator wraps back to slot 0 (the only free one).
        reused = wpq.try_allocate(persist(0x40))
        assert reused.index == first.index
        assert reused.ciphertext == b"\xaa" * 72
        assert reused.cleared  # old content remains processed
        assert not reused.protected

    def test_occupancy_and_high_water(self, wpq):
        wpq.try_allocate(persist(0))
        wpq.try_allocate(persist(64))
        assert wpq.occupancy == 2
        assert wpq.high_water == 2


class TestTagArray:
    def test_lookup_hit(self, wpq):
        wpq.try_allocate(persist(0x1000))
        assert wpq.lookup(0x1000) is not None

    def test_lookup_unaligned(self, wpq):
        wpq.try_allocate(persist(0x1000))
        assert wpq.lookup(0x1008) is not None

    def test_lookup_miss(self, wpq):
        assert wpq.lookup(0x1000) is None

    def test_cleared_entry_not_visible(self, wpq):
        entry = wpq.try_allocate(persist(0x1000))
        wpq.begin_fetch(entry)
        wpq.mark_cleared(entry)
        assert wpq.lookup(0x1000) is None


class TestCoalescing:
    def test_coalesce_same_address(self, wpq):
        first = wpq.try_allocate(persist(0x1000))
        merged = wpq.try_coalesce(persist(0x1000))
        assert merged is first
        assert wpq.coalesced == 1

    def test_coalesce_requires_same_address(self, wpq):
        wpq.try_allocate(persist(0x1000))
        assert wpq.try_coalesce(persist(0x2000)) is None

    def test_no_coalesce_into_in_flight(self, wpq):
        entry = wpq.try_allocate(persist(0x1000))
        wpq.begin_fetch(entry)
        assert wpq.try_coalesce(persist(0x1000)) is None

    def test_coalesce_clears_protection(self, wpq):
        entry = wpq.try_allocate(persist(0x1000))
        entry.protected = True
        wpq.try_coalesce(persist(0x1000))
        assert not entry.protected


class TestDrainOrder:
    def test_oldest_pending_is_fifo(self, wpq):
        wpq.try_allocate(persist(0x0))
        wpq.try_allocate(persist(0x40))
        entry = wpq.oldest_pending()
        assert entry.index == 0
        wpq.begin_fetch(entry)
        assert wpq.oldest_pending().index == 1

    def test_oldest_pending_empty(self, wpq):
        assert wpq.oldest_pending() is None

    def test_mark_cleared_frees_slot(self, wpq):
        for i in range(4):
            wpq.try_allocate(persist(i * 64))
        entry = wpq.oldest_pending()
        wpq.begin_fetch(entry)
        wpq.mark_cleared(entry)
        assert not wpq.is_full
        assert wpq.try_allocate(persist(0x5000)) is not None

    def test_wraparound(self, wpq):
        # Fill, drain, refill repeatedly; indices must wrap cleanly.
        for round_number in range(3):
            for i in range(4):
                assert wpq.try_allocate(persist((round_number * 4 + i) * 64))
            for _ in range(4):
                entry = wpq.oldest_pending()
                wpq.begin_fetch(entry)
                wpq.mark_cleared(entry)
        assert wpq.is_empty


class TestDrainableEntries:
    def test_unprotected_entries_not_drainable(self, wpq):
        wpq.try_allocate(persist(0x0))
        assert list(wpq.drainable_entries()) == []

    def test_protected_entries_drainable(self, wpq):
        entry = wpq.try_allocate(persist(0x0))
        entry.ciphertext = b"\x01" * 72
        entry.protected = True
        entry.cleared = False
        assert len(list(wpq.drainable_entries())) == 1

    def test_cleared_content_still_drainable(self, wpq):
        entry = wpq.try_allocate(persist(0x0))
        entry.ciphertext = b"\x01" * 72
        entry.protected = True
        entry.cleared = False
        wpq.begin_fetch(entry)
        wpq.mark_cleared(entry)
        assert len(list(wpq.drainable_entries())) == 1

    def test_reset(self, wpq):
        entry = wpq.try_allocate(persist(0x0))
        entry.ciphertext = b"\x01" * 72
        wpq.reset()
        assert wpq.is_empty
        assert list(wpq.drainable_entries()) == []
        assert wpq.lookup(0x0) is None


class TestRetryAccounting:
    def test_record_retry(self, wpq):
        wpq.record_retry()
        wpq.record_retry()
        assert wpq.retry_events == 2


class _RawRequest:
    """A request stub whose address is NOT pre-aligned.

    ``WriteRequest`` line-aligns in ``__post_init__``, which masked the
    tag-array bug: the queue itself must key on the line address no
    matter what its caller hands it.
    """

    def __init__(self, address):
        self.address = address
        self.data = None
        self.kind = WriteKind.PERSIST
        self.seq = -1


class TestUnalignedTagKeys:
    """Regression: tag array must key on the line address everywhere."""

    def test_unaligned_insert_serves_lookup(self, wpq):
        wpq.try_allocate(_RawRequest(0x1008))
        assert wpq.lookup(0x1008) is not None
        assert wpq.lookup(0x1000) is not None
        assert wpq.lookup(0x103F) is not None

    def test_unaligned_insert_coalesces(self, wpq):
        entry = wpq.try_allocate(_RawRequest(0x1001))
        merged = wpq.try_coalesce(_RawRequest(0x1030))
        assert merged is entry
        assert wpq.coalesced == 1

    def test_unaligned_clear_leaves_no_stale_tag(self, wpq):
        entry = wpq.try_allocate(_RawRequest(0x2004))
        wpq.begin_fetch(entry)
        wpq.mark_cleared(entry)
        assert wpq.lookup(0x2004) is None
        assert wpq._tags == {}

    def test_mask_derived_from_line_size(self):
        wide = WritePendingQueue(4, line_bytes=128)
        wide.try_allocate(_RawRequest(0x1000))
        # 0x1040 is a different 64B line but the same 128B line.
        assert wide.lookup(0x1040) is not None
        assert wide.line_address(0x1040) == 0x1000

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            WritePendingQueue(4, line_bytes=96)
        with pytest.raises(ValueError):
            WritePendingQueue(4, line_bytes=0)
