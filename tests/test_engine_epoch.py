"""Batched-core tests: epoch kernel equivalence, cancellation leak
bounds, packed trace replay, and unit memoization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import eager_config
from repro.cpu.trace_io import PackedTrace, trace_to_arrays
from repro.engine import EventQueue, Simulator
from repro.harness.memo import (
    SEGMENT_TRANSACTIONS,
    UnitMemo,
    config_fingerprint,
    default_unit_memo_dir,
    trace_chain_digests,
)
from repro.harness.runner import run_trace
from repro.workloads import generate_trace

# ----------------------------------------------------------------------
# Satellite: cancelled-event heap leak stays bounded
# ----------------------------------------------------------------------
class TestCancelledEventLeak:
    def test_queue_compacts_10k_cancelled_events(self):
        queue = EventQueue()
        queue.push(10**9, lambda: None)  # one live survivor
        for i in range(10_000):
            queue.push(1000 + i, lambda: None).cancel()
        # Compaction keeps the heap at <= 2x the live count (plus the
        # not-yet-compacted remainder); 10k corpses must not pile up.
        assert len(queue) <= 16
        assert queue.live_count == 1

    def test_simulator_schedule_cancel_storm_still_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(20_000, lambda: fired.append(sim.now))
        for i in range(10_000):
            sim.schedule(1 + i, lambda: fired.append("dead")).cancel()
        assert len(sim._queue) <= 16
        sim.run()
        assert fired == [20_000]
        assert sim.events_fired == 1


# ----------------------------------------------------------------------
# Satellite: epoch kernel is event-for-event equivalent to the heap one
# ----------------------------------------------------------------------
#: One scheduled event: (time, cancellable, action, param).  Action 0
#: just logs; 1 spawns a nested call_after(param) from inside the
#: callback; 2 cancels the param-th cancellable handle *at fire time*
#: (covering cancellations that land mid-epoch, after the batch was
#: drained from the heap).
_EVENT_SPECS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.booleans(),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=30,
)
_PRE_CANCELS = st.sets(st.integers(min_value=0, max_value=29), max_size=8)


def _drive(epoch: bool, spec, pre_cancels):
    sim = Simulator(epoch=epoch)
    log = []
    handles = []

    def make_callback(index, action, param):
        def callback():
            log.append((sim.now, index))
            if action == 1:
                sim.call_after(
                    param, lambda: log.append((sim.now, index + 1000))
                )
            elif action == 2 and handles:
                handles[param % len(handles)].cancel()
        return callback

    for index, (time, cancellable, action, param) in enumerate(spec):
        callback = make_callback(index, action, param)
        if cancellable:
            handles.append(sim.schedule(time, callback))
        else:
            sim.call_at(time, callback)
    for j in pre_cancels:
        if handles:
            handles[j % len(handles)].cancel()
    sim.run()
    return log, sim.now, sim.events_fired


class TestEpochEquivalence:
    @given(_EVENT_SPECS, _PRE_CANCELS)
    @settings(max_examples=120, deadline=None)
    def test_epoch_matches_heap_kernel(self, spec, pre_cancels):
        epoch = _drive(True, spec, pre_cancels)
        heap = _drive(False, spec, pre_cancels)
        assert epoch[0] == heap[0]  # firing order, timestamped
        assert epoch[1] == heap[1]  # final now
        assert epoch[2] == heap[2]  # events_fired

    def test_same_cycle_ties_fire_in_schedule_order(self):
        sim = Simulator(epoch=True)
        order = []
        for i in range(10):
            sim.call_at(5, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))
        assert sim.events_fired == 10


# ----------------------------------------------------------------------
# Tentpole: packed trace replay
# ----------------------------------------------------------------------
class TestPackedTrace:
    def _trace(self):
        return generate_trace("hashmap", 8, 128, 3)

    def test_roundtrip_preserves_ops(self):
        trace = self._trace()
        packed = PackedTrace.from_trace(trace)
        assert len(packed) == len(trace)
        assert packed.to_trace() == trace
        assert list(packed) == trace

    def test_from_trace_idempotent_and_columns_cached(self):
        packed = PackedTrace.from_trace(self._trace())
        assert PackedTrace.from_trace(packed) is packed
        assert packed.columns() is packed.columns()

    def test_trace_to_arrays_passthrough(self):
        packed = PackedTrace.from_trace(self._trace())
        codes, operands = trace_to_arrays(packed)
        assert codes is packed.codes and operands is packed.operands

    def test_column_length_mismatch_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            PackedTrace(np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64))

    def test_replay_matches_tuple_trace_bit_for_bit(self):
        config = eager_config()
        trace = generate_trace("hashmap", 20, config.transaction_size, 1)
        classic = run_trace(config, trace, "hashmap", 20)
        packed = run_trace(
            config, PackedTrace.from_trace(trace), "hashmap", 20
        )
        assert classic.cycles == packed.cycles
        assert classic.instructions == packed.instructions
        assert classic.stats == packed.stats


# ----------------------------------------------------------------------
# Tentpole: sub-unit memoization
# ----------------------------------------------------------------------
class TestUnitMemo:
    def _unit(self):
        config = eager_config()
        trace = generate_trace("hashmap", 20, config.transaction_size, 1)
        return config, PackedTrace.from_trace(trace)

    def test_miss_then_hit_bit_identical(self, tmp_path):
        config, packed = self._unit()
        memo = UnitMemo(tmp_path)
        first = memo.run(config, packed, "hashmap", 20)
        assert (memo.hits, memo.misses) == (0, 1)
        second = memo.run(config, packed, "hashmap", 20)
        assert (memo.hits, memo.misses) == (1, 1)
        assert first.stats == second.stats
        assert first.cycles == second.cycles
        assert first.controller is second.controller
        assert first.misu_design is second.misu_design

    def test_disabled_memo_always_simulates(self):
        config, packed = self._unit()
        memo = UnitMemo(None)
        assert not memo.enabled
        result = memo.run(config, packed, "hashmap", 20)
        assert result.cycles > 0
        assert (memo.hits, memo.misses) == (0, 0)

    def test_key_sensitive_to_trace_config_not_provenance(self):
        config, packed = self._unit()
        memo = UnitMemo(None)
        key = memo.key_for(config, packed)
        # Same stream, different container: identical key (cross-seed
        # collisions are *content* collisions by design).
        assert memo.key_for(config, packed.to_trace()) == key
        other_trace = generate_trace(
            "hashmap", 20, config.transaction_size, 2
        )
        assert memo.key_for(config, other_trace) != key
        from repro.config import lazy_config

        assert memo.key_for(lazy_config(), packed) != key

    def test_chain_shares_prefix_until_divergence(self):
        config = eager_config()
        short = generate_trace(
            "hashmap", SEGMENT_TRANSACTIONS, config.transaction_size, 1
        )
        long = generate_trace(
            "hashmap", 3 * SEGMENT_TRANSACTIONS, config.transaction_size, 1
        )
        chain_short = trace_chain_digests(short)
        chain_long = trace_chain_digests(long)
        # The workload generator is seed-deterministic per transaction,
        # so the shorter run's first full segment is a strict prefix of
        # the longer run's — the chains must agree on that link.
        assert chain_short[0] == chain_long[0]
        assert chain_short[-1] != chain_long[-1]

    def test_corrupt_entry_is_a_miss_not_a_wrong_result(self, tmp_path):
        config, packed = self._unit()
        memo = UnitMemo(tmp_path)
        memo.run(config, packed, "hashmap", 20)
        for entry in tmp_path.glob("*.json"):
            entry.write_text(entry.read_text().replace('"cycles":', '"cycl":'))
        fresh = UnitMemo(tmp_path)
        result = fresh.run(config, packed, "hashmap", 20)
        assert result.cycles > 0
        assert fresh.hits == 0

    def test_undecodable_payload_is_quarantined_and_regenerated(
        self, tmp_path
    ):
        """A payload whose byte digest is valid but that does not decode
        to a RunResult must be quarantined — not left in the store to
        poison every future load of the key."""
        config, packed = self._unit()
        memo = UnitMemo(tmp_path)
        key = memo.key_for(config, packed)
        # Digest-valid (the store recomputes it) but decode-invalid.
        memo._store.store(key, {"controller": "no-such-design"})
        assert memo.load(key) is None
        assert memo.misses == 1
        # The poisoned entry moved to quarantine and is gone from the
        # store, so the next load is a plain path miss.
        assert not memo._store.path_for(key).exists()
        assert memo._store.quarantined == 1
        quarantine = tmp_path / memo._store.QUARANTINE_DIR
        assert [p.name for p in quarantine.iterdir()] == [f"{key}.json"]
        # Regeneration round-trip: run repopulates the key, and a fresh
        # memo now hits on a decodable payload.
        result = memo.run(config, packed, "hashmap", 20)
        assert result.cycles > 0
        fresh = UnitMemo(tmp_path)
        again = fresh.load(key)
        assert again is not None
        assert again.cycles == result.cycles
        assert (fresh.hits, fresh.quarantined_entries) == (1, 0)

    def test_env_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_UNIT_MEMO", "off")
        assert default_unit_memo_dir() is None
        monkeypatch.setenv("REPRO_UNIT_MEMO", "/tmp/somewhere")
        assert str(default_unit_memo_dir()) == "/tmp/somewhere"
        monkeypatch.delenv("REPRO_UNIT_MEMO")
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert default_unit_memo_dir() is None

    def test_config_fingerprint_stable(self):
        assert config_fingerprint(eager_config()) == config_fingerprint(
            eager_config()
        )
