"""End-to-end fleet runs over real worker subprocesses (Unix sockets).

The acceptance bar for the fleet, test-first: a multi-worker run —
including one whose worker is SIGKILLed mid-campaign — must be
**unit-for-unit bit-identical** to serial :func:`execute_unit`, with
every unit recorded exactly once in the sqlite database.  The tier-1
variants keep the matrix tiny (2 workers, 6 transactions); the 3-worker
kill-vs-unkilled database comparison runs in the slow tier.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.fleet.db import FleetDB
from repro.fleet.dispatcher import (
    CampaignSpec,
    FleetDispatcher,
    expand_units,
    spec_to_run_unit,
)
from repro.fleet.report import build_report, render_html
from repro.harness.parallel import execute_unit
from repro.harness.trace_store import TraceCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import result_digest, result_payload


def _tiny_campaign(fault_sites: int = 1) -> CampaignSpec:
    return CampaignSpec(
        name="itest",
        workloads=("hashmap",),
        designs=("dolos-partial", "prewpq-eager"),
        seeds=(1, 2),
        transactions=6,
        fault_sites=fault_sites,
    ).validate()


def _worker_env(tmp_path) -> dict:
    """Hermetic workers: private trace cache, no cross-run memo state."""
    env = dict(os.environ)
    env["REPRO_TRACE_CACHE"] = str(tmp_path / "traces")
    env["REPRO_RESULT_CACHE"] = "off"
    env["REPRO_UNIT_MEMO"] = "off"
    return env


def _serial_digests(campaign: CampaignSpec) -> dict:
    """unit_key -> payload digest from plain serial execute_unit."""
    cache = TraceCache()
    return {
        unit.key: result_digest(
            result_payload(execute_unit(spec_to_run_unit(unit.spec), cache))
        )
        for unit in expand_units(campaign)
    }


def _assert_matches_serial(db: FleetDB, experiment_id: str, serial: dict):
    rows = db.unit_rows(experiment_id)
    assert sorted(row.unit_key for row in rows) == sorted(serial)
    for row in rows:
        assert result_digest(row.payload) == serial[row.unit_key], (
            f"unit {row.unit_key} diverged from serial execution"
        )


class TestFleetMatchesSerial:
    def test_two_worker_fleet_is_bit_identical_to_serial(self, tmp_path):
        campaign = _tiny_campaign()
        serial = _serial_digests(campaign)
        db = FleetDB(tmp_path / "fleet.sqlite")
        summary = FleetDispatcher(
            campaign,
            db,
            workers=2,
            experiment_id="two-worker",
            runtime_dir=tmp_path / "rt",
            worker_env=_worker_env(tmp_path),
        ).run()
        assert summary.units_recorded == summary.units_total == len(serial)
        assert summary.worker_deaths == 0
        _assert_matches_serial(db, "two-worker", serial)
        status = db.status("two-worker")
        assert status["status"] == "done"
        assert set(status["workers"]) <= {"worker-0", "worker-1"}

    def test_inline_mode_matches_serial_too(self, tmp_path):
        campaign = _tiny_campaign()
        serial = _serial_digests(campaign)
        db = FleetDB(tmp_path / "fleet.sqlite")
        summary = FleetDispatcher(
            campaign, db, workers=0, experiment_id="inline"
        ).run()
        assert summary.units_recorded == len(serial)
        _assert_matches_serial(db, "inline", serial)

    def test_rerun_resumes_idempotently(self, tmp_path):
        """A second run of the same experiment re-dispatches nothing."""
        campaign = _tiny_campaign(fault_sites=0)
        db = FleetDB(tmp_path / "fleet.sqlite")
        FleetDispatcher(campaign, db, workers=0, experiment_id="resume").run()
        recorded = {}

        def on_record(worker_id, key):
            recorded[key] = recorded.get(key, 0) + 1

        summary = FleetDispatcher(
            campaign, db, workers=0, experiment_id="resume",
            on_record=on_record,
        ).run()
        assert recorded == {}  # nothing re-ran
        assert summary.units_recorded == summary.units_total
        assert db.status("resume")["duplicates"] == 0


class TestWorkerKill:
    def test_killed_worker_is_redispatched_bit_identically(
        self, tmp_path, monkeypatch, caplog
    ):
        """SIGKILL one of two workers after its first recorded unit.

        The survivor completes the campaign via requeue + stealing; the
        database still matches serial execution with zero lost units.
        A client whose socket refuses to close on the teardown path must
        be *logged* (with the worker id), never silently swallowed.
        """
        real_close = ServiceClient.close

        def close_raises(self):
            real_close(self)
            raise OSError("socket already reaped")

        monkeypatch.setattr(ServiceClient, "close", close_raises)
        campaign = _tiny_campaign()
        serial = _serial_digests(campaign)
        db = FleetDB(tmp_path / "fleet.sqlite")
        killed = threading.Event()
        dispatcher = FleetDispatcher(
            campaign,
            db,
            workers=2,
            experiment_id="killed",
            runtime_dir=tmp_path / "rt",
            worker_env=_worker_env(tmp_path),
        )

        def kill_after_first_record(worker_id, key):
            if worker_id == "worker-0" and not killed.is_set():
                killed.set()
                dispatcher.worker_handles["worker-0"].kill()

        dispatcher.on_record = kill_after_first_record
        with caplog.at_level("WARNING", logger="repro.fleet.dispatcher"):
            summary = dispatcher.run()
        teardown_logs = [
            record for record in caplog.records
            if "client close failed" in record.getMessage()
        ]
        assert teardown_logs, "close failure on teardown was not logged"
        assert any(
            "worker-" in record.getMessage() for record in teardown_logs
        )
        assert killed.is_set()
        assert summary.worker_deaths == 1
        assert summary.units_recorded == summary.units_total == len(serial)
        _assert_matches_serial(db, "killed", serial)
        # Exactly once: each key appears in one row; clones (if any)
        # only ever bump the duplicates counter.
        assert len(db.unit_keys("killed")) == len(serial)

    @pytest.mark.slow
    def test_three_worker_kill_db_equals_unkilled_run(self, tmp_path):
        """3 workers, one killed mid-campaign: payloads (and therefore
        the report) identical to an undisturbed 3-worker run."""
        campaign = CampaignSpec(
            name="slow-kill",
            workloads=("hashmap", "btree"),
            designs=("dolos-partial", "prewpq-eager", "eadr"),
            seeds=(1, 2, 3),
            transactions=12,
            fault_sites=2,
        ).validate()
        db = FleetDB(tmp_path / "fleet.sqlite")

        calm = FleetDispatcher(
            campaign, db, workers=3, experiment_id="calm",
            runtime_dir=tmp_path / "rt-calm",
            worker_env=_worker_env(tmp_path),
        ).run()

        killed = threading.Event()
        dispatcher = FleetDispatcher(
            campaign, db, workers=3, experiment_id="chaos",
            runtime_dir=tmp_path / "rt-chaos",
            worker_env=_worker_env(tmp_path),
        )

        def chaos(worker_id, key):
            if worker_id == "worker-1" and not killed.is_set():
                killed.set()
                dispatcher.worker_handles["worker-1"].kill()

        dispatcher.on_record = chaos
        chaotic = dispatcher.run()

        assert calm.units_total == chaotic.units_total
        assert chaotic.worker_deaths == 1
        calm_rows = {r.unit_key: r.payload_digest for r in db.unit_rows("calm")}
        chaos_rows = {
            r.unit_key: r.payload_digest for r in db.unit_rows("chaos")
        }
        assert calm_rows == chaos_rows
        # Reports agree on everything but the experiment identity.
        calm_report = build_report(db, "calm")
        chaos_report = build_report(db, "chaos")
        for field in ("aggregates", "speedups", "faults"):
            assert calm_report[field] == chaos_report[field]


class TestWireReport:
    def test_service_serves_report_readonly(self, tmp_path):
        """`harness serve --fleet-db` answers report frames (json+html)."""
        campaign = _tiny_campaign(fault_sites=0)
        db_path = tmp_path / "fleet.sqlite"
        FleetDispatcher(
            campaign, FleetDB(db_path), workers=0, experiment_id="wire"
        ).run()

        sock = str(tmp_path / "srv.sock")
        ready = tmp_path / "ready.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness", "serve",
                "--unix", sock, "--ready-file", str(ready),
                "--fleet-db", str(db_path),
            ],
            env=dict(os.environ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert proc.poll() is None, "server died during startup"
                assert time.monotonic() < deadline, "server never became ready"
                time.sleep(0.02)
            with ServiceClient(sock) as client:
                frame = client.report("wire")
                assert frame["report"] == build_report(
                    FleetDB(db_path, readonly=True), "wire"
                )
                html_frame = client.report("wire", fmt="html")
                assert html_frame["html"] == render_html(frame["report"])
                with pytest.raises(ServiceError) as excinfo:
                    client.report("no-such-experiment")
                assert excinfo.value.code == "no-report"
        finally:
            proc.terminate()
            proc.wait(timeout=10)
