"""Smoke tests: every shipped example must run clean.

Each example is executed in a subprocess (as a user would run it) with
its workload sizes untouched; we only assert a zero exit and the
expected headline strings in the output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "Dolos speedup over baseline",
    "crash_recovery_demo.py": "persisted writes intact",
    "design_space_sweep.py": "Speedup over Pre-WPQ-Secure",
    "custom_workload.py": "persistent queue",
    "attack_gallery.py": "Every in-scope attack detected",
    "wpq_occupancy_timeline.py": "occupancy",
    "cycle_breakdown.py": "Cycle breakdown",
}


@pytest.mark.parametrize("script,expected", sorted(CASES.items()))
def test_example_runs_clean(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_all_examples_are_covered():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(CASES), (
        "new example scripts must be added to the smoke-test table"
    )
