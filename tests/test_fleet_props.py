"""Property-based tests for fleet expansion, sharding and reporting.

Three invariants carry the fleet's correctness argument:

* **Expansion is a pure function** of the campaign — deterministic,
  duplicate-free, and exactly the matrix product (plus one fault unit
  per cell when requested), whatever duplicates or orderings the
  campaign lists contain.
* **Sharding is an exact partition** — across any shard count, and
  across any interleaving of claims, steals, worker deaths and
  re-dispatches, every unit is completed exactly once: no loss, no
  overlap.
* **Reports are arrival-order invariant** — the same units inserted in
  any permutation (by any workers) produce byte-identical report
  dicts, which is what makes the characterization fixture meaningful.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.fleet.db import FleetDB
from repro.fleet.dispatcher import (
    CampaignSpec,
    FleetUnit,
    UnitLedger,
    expand_units,
    shard_manifests,
)
from repro.fleet.report import build_report
from repro.oracle.check import controller_matrix
from repro.workloads import ORACLE_SEMANTICS

# Fault units require oracle semantics, so campaigns draw from that set.
_WORKLOADS = sorted(ORACLE_SEMANTICS)
_DESIGNS = sorted(controller_matrix())

campaigns = st.builds(
    CampaignSpec,
    name=st.just("prop"),
    workloads=st.lists(
        st.sampled_from(_WORKLOADS), min_size=1, max_size=4
    ).map(tuple),
    designs=st.lists(
        st.sampled_from(_DESIGNS), min_size=1, max_size=3
    ).map(tuple),
    seeds=st.lists(
        st.integers(0, 50), min_size=1, max_size=4
    ).map(tuple),
    transactions=st.integers(1, 500),
    fault_sites=st.integers(0, 3),
)


class TestExpansion:
    @given(campaign=campaigns)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_and_duplicate_free(self, campaign):
        units = expand_units(campaign)
        again = expand_units(campaign)
        assert [u.key for u in units] == [u.key for u in again]
        assert len({u.key for u in units}) == len(units)
        cells = (
            len(set(campaign.workloads))
            * len(set(campaign.designs))
            * len(set(campaign.seeds))
        )
        expected = cells * (2 if campaign.fault_sites else 1)
        assert len(units) == expected

    @given(campaign=campaigns)
    @settings(max_examples=20, deadline=None)
    def test_listing_order_never_creates_new_units(self, campaign):
        """Reordering/duplicating campaign lists changes nothing but
        expansion order — the unit *set* is the matrix, full stop."""
        shuffled = CampaignSpec(
            name=campaign.name,
            workloads=tuple(reversed(campaign.workloads + campaign.workloads)),
            designs=tuple(reversed(campaign.designs)),
            seeds=tuple(reversed(campaign.seeds + campaign.seeds)),
            transactions=campaign.transactions,
            fault_sites=campaign.fault_sites,
        )
        assert {u.key for u in expand_units(campaign)} == {
            u.key for u in expand_units(shuffled)
        }


def _fake_units(n: int):
    return [FleetUnit(key=f"k{i:04d}", spec=None) for i in range(n)]


class TestSharding:
    @given(n=st.integers(0, 200), shards=st.integers(1, 17))
    @settings(max_examples=60, deadline=None)
    def test_manifests_partition_exactly(self, n, shards):
        units = _fake_units(n)
        manifests = shard_manifests(units, shards)
        assert len(manifests) == shards
        flat = [u.key for m in manifests for u in m]
        assert sorted(flat) == [u.key for u in units]  # no loss, no dup
        sizes = [len(m) for m in manifests]
        assert max(sizes) - min(sizes) <= 1  # balanced round-robin

    @given(
        n=st.integers(1, 60),
        shards=st.integers(1, 6),
        schedule_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_ledger_exact_under_stealing_and_deaths(
        self, n, shards, schedule_seed
    ):
        """Random claim/complete/die interleavings: exactly-once.

        A seeded schedule interleaves claims, completions and worker
        deaths (whose units are requeued).  Whatever the order, every
        unit must end up completed exactly once.
        """
        rng = random.Random(schedule_seed)
        units = _fake_units(n)
        ledger = UnitLedger(shard_manifests(units, shards))
        workers = [f"w{i}" for i in range(shards)]
        alive = set(workers)
        holding = {w: [] for w in workers}
        completed = []

        while ledger.outstanding():
            # A dead-end guard: at least one worker must stay alive.
            actions = []
            for w in sorted(alive):
                actions.append(("claim", w))
                if holding[w]:
                    actions.append(("complete", w))
                    if len(alive) > 1:
                        actions.append(("die", w))
            action, w = rng.choice(actions)
            shard = workers.index(w)
            if action == "claim":
                unit = ledger.claim(shard, w)
                if unit is not None:
                    holding[w].append(unit)
            elif action == "complete":
                unit = holding[w].pop()
                if ledger.complete(unit.key, w):
                    completed.append(unit.key)
            else:  # die
                holding[w].clear()
                ledger.requeue(w)
                alive.discard(w)

        assert sorted(completed) == sorted(u.key for u in units)
        assert len(completed) == n  # exactly once each


def _synthetic_rows(count: int):
    rows = []
    for i in range(count):
        workload = _WORKLOADS[i % 3]
        design = _DESIGNS[i % 2]
        seed = i // 6
        mode = "faults" if i % 5 == 0 else "run"
        if mode == "faults":
            payload = {
                "kind": "faults",
                "workload": workload,
                "detected": i % 3,
                "tolerated": i % 2,
                "silent": 0,
                "passed": True,
            }
        else:
            payload = {
                "workload": workload,
                "cycles": 1000 + 17 * i,
                "instructions": 400 + 7 * i,
                "stats": {},
            }
        spec = {
            "workload": workload,
            "design": design,
            "seed": seed,
            "transactions": 60,
            "mode": mode,
        }
        rows.append((f"key{i:03d}", spec, payload))
    return rows


class TestReportInvariance:
    @given(order_seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_report_invariant_under_arrival_order(self, order_seed):
        rows = _synthetic_rows(24)
        shuffled = list(rows)
        random.Random(order_seed).shuffle(shuffled)

        tmp = Path(tempfile.mkdtemp(prefix="fleet-props-"))
        reports = []
        for tag, ordering in (("a", rows), ("b", shuffled)):
            db = FleetDB(tmp / f"{order_seed}-{tag}.sqlite")
            db.open_experiment("exp", {"name": "prop"}, git_hash="fixed")
            for index, (key, spec, payload) in enumerate(ordering):
                db.record_unit(
                    "exp", key, spec, payload,
                    worker_id=f"w{index % 3}",  # worker attribution varies
                    recorded_at=float(index),   # ... and so do timestamps
                )
            reports.append(build_report(db, "exp"))
            db.close()
        shutil.rmtree(tmp, ignore_errors=True)
        assert reports[0] == reports[1]
