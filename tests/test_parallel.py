"""Parallel experiment engine + persistent trace cache.

The contract under test is the acceptance bar of the parallel harness:
``--jobs N`` must be a pure wall-clock optimisation — every table row,
summary value and note bit-identical to the serial run — and the disk
trace cache must round-trip traces exactly.
"""

import multiprocessing
import os
import threading
import time
from pathlib import Path

import pytest

from repro.config import eager_config
from repro.harness.experiments import run_experiment
from repro.harness.parallel import (
    ParallelExecutionError,
    RecordingExecutor,
    ReplayExecutor,
    RunUnit,
    executor_scope,
    fan_out,
    report_failures,
    resolve_jobs,
    run_units,
)
from repro.harness.runner import RunResult, run_trace
from repro.harness.trace_store import TraceCache, TraceStore
from repro.workloads import generate_trace

TXNS = 40
SEED = 1

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods()
    and "spawn" not in multiprocessing.get_all_start_methods(),
    reason="no usable multiprocessing start method",
)


def _result_fields(result):
    return (
        result.experiment,
        result.title,
        result.headers,
        result.rows,
        result.summary,
        result.notes,
    )


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("name", ["fig06", "tab02"])
    def test_jobs4_matches_jobs1(self, name, tmp_path):
        serial = run_experiment(
            name, jobs=1, transactions=TXNS, seed=SEED
        )
        parallel = run_experiment(
            name, jobs=4, cache_dir=tmp_path, transactions=TXNS, seed=SEED
        )
        assert _result_fields(serial) == _result_fields(parallel)

    def test_breakdown_units_parallelise(self, tmp_path):
        serial = run_experiment("breakdown", jobs=1, transactions=TXNS, seed=SEED)
        parallel = run_experiment(
            "breakdown", jobs=2, cache_dir=tmp_path, transactions=TXNS, seed=SEED
        )
        assert _result_fields(serial) == _result_fields(parallel)

    def test_static_experiment_passthrough(self):
        # tab03 has no run units; jobs>1 must not change (or break) it.
        assert _result_fields(run_experiment("tab03", jobs=4)) == _result_fields(
            run_experiment("tab03")
        )

    def test_run_units_order_matches_input(self, tmp_path):
        units = [
            RunUnit("hashmap", eager_config(), TXNS, SEED),
            RunUnit("btree", eager_config(), TXNS, SEED),
        ]
        serial = run_units(units, jobs=1, cache_dir=tmp_path)
        pooled = run_units(units, jobs=2, cache_dir=tmp_path)
        for a, b in zip(serial, pooled):
            assert isinstance(a, RunResult) and isinstance(b, RunResult)
            assert (a.workload, a.cycles, a.stats) == (b.workload, b.cycles, b.stats)
        assert [r.workload for r in pooled] == ["hashmap", "btree"]


class TestExecutors:
    def test_recording_then_replay(self, tmp_path):
        unit = RunUnit("hashmap", eager_config(), TXNS, SEED)
        recorder = RecordingExecutor()
        with executor_scope(recorder):
            placeholder = recorder.run(unit)
        assert placeholder.cycles == 1
        assert recorder.units == [unit]

        real = run_units([unit], jobs=1, cache_dir=tmp_path)[0]
        replay = ReplayExecutor({unit: real}, cache_dir=tmp_path)
        assert replay.run(unit) is real
        assert replay.fallback_units == []

    def test_replay_falls_back_on_unknown_unit(self, tmp_path):
        unit = RunUnit("hashmap", eager_config(), TXNS, SEED)
        replay = ReplayExecutor({}, cache_dir=tmp_path)
        result = replay.run(unit)
        assert replay.fallback_units == [unit]
        trace = generate_trace("hashmap", TXNS, 1024, SEED)
        assert result.cycles == run_trace(eager_config(), trace).cycles

    def test_units_dedup_preserves_order(self):
        recorder = RecordingExecutor()
        a = RunUnit("hashmap", eager_config(), TXNS, SEED)
        b = RunUnit("btree", eager_config(), TXNS, SEED)
        for unit in (a, b, a):
            recorder.run(unit)
        assert recorder.units == [a, b]


# ----------------------------------------------------------------------
# Self-healing: crashed and hung workers must not kill a sweep.
#
# Workers must be module-level (picklable under fork/spawn); they key
# their misbehaviour off ``multiprocessing.parent_process()`` so the
# same function is well-behaved when the in-process serial fallback
# runs it.
# ----------------------------------------------------------------------
_MARKER_ENV = "REPRO_TEST_FLAKY_DIR"


def _flaky_square(item):
    """Crash on each item's first pool attempt, succeed afterwards."""
    marker = Path(os.environ[_MARKER_ENV]) / f"seen-{item}"
    if not marker.exists():
        marker.write_text("crashed once")
        raise RuntimeError(f"injected crash for {item}")
    return item * item


def _hang_in_pool(item):
    if multiprocessing.parent_process() is not None:
        time.sleep(60)
    return item + 1


def _raise_in_pool(item):
    if multiprocessing.parent_process() is not None:
        raise ValueError("worker poison")
    return item * 3


def _raise_everywhere(item):
    raise ValueError(f"unfixable {item}")


class TestWorkerResilience:
    def test_crashed_worker_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path))
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0.01")
        failures = []
        results = fan_out(_flaky_square, [2, 3, 4], jobs=2, failures=failures)
        assert results == [4, 9, 16]
        assert failures and all(f.resolution == "retried" for f in failures)
        assert all("injected crash" in f.error for f in failures)

    def test_hung_worker_times_out_then_serial_matches_serial_run(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "0.5")
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        failures = []
        degraded = fan_out(_hang_in_pool, [5, 6], jobs=2, failures=failures)
        # The acceptance bar: results bit-identical to an all-serial run.
        assert degraded == fan_out(_hang_in_pool, [5, 6], jobs=1)
        assert {f.resolution for f in failures} == {"serial"}
        assert all("timed out" in f.error for f in failures)
        assert sorted(f.index for f in failures) == [0, 1]

    def test_poisoned_worker_degrades_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        failures = []
        results = fan_out(_raise_in_pool, [1, 2, 3], jobs=2, failures=failures)
        assert results == [3, 6, 9]
        assert {f.resolution for f in failures} == {"serial"}
        assert all(f.attempts == 3 for f in failures)  # 2 pool + 1 serial
        assert all("ValueError" in f.error for f in failures)

    def test_serial_fallback_failure_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "0")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        failures = []
        with pytest.raises(ParallelExecutionError, match="serial fallback"):
            fan_out(_raise_everywhere, [1, 2], jobs=2, failures=failures)
        assert failures and failures[0].resolution == "failed"

    def test_report_failures_prints_summary(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        failures = []
        fan_out(_raise_in_pool, [1, 2], jobs=2, failures=failures)
        report_failures(failures)
        err = capsys.readouterr().err
        assert "serial" in err and "ValueError" in err

    def test_uncollected_failures_still_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        assert fan_out(_raise_in_pool, [7, 8], jobs=2) == [21, 24]
        assert "[parallel]" in capsys.readouterr().err

    def test_run_units_survive_worker_timeout(self, tmp_path, monkeypatch):
        """End-to-end through run_units: with a timeout so tight every
        pool attempt dies, the sweep still completes serially and the
        results match an undisturbed serial run."""
        units = [
            RunUnit("hashmap", eager_config(), TXNS, SEED),
            RunUnit("btree", eager_config(), TXNS, SEED),
        ]
        serial = run_units(units, jobs=1, cache_dir=tmp_path)
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "0.000001")
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        failures = []
        degraded = run_units(
            units, jobs=2, cache_dir=tmp_path, failures=failures
        )
        for a, b in zip(serial, degraded):
            assert (a.workload, a.cycles, a.stats) == (b.workload, b.cycles, b.stats)
        assert failures and {f.resolution for f in failures} == {"serial"}


class TestStreamingCallbacks:
    """``on_result`` must fire exactly once per item, every path.

    The hazard: a retried unit completes on a *replacement* pool (or in
    the serial fallback), not the pool that first ran it.  The callback
    rides the mapping function, not any one pool, so it must still fire
    for those items — and never twice for a unit that times out on one
    pool but later completes elsewhere.
    """

    def _collect(self):
        seen = []

        def on_result(index, item, result):
            seen.append((index, item, result))

        return seen, on_result

    def test_fires_once_per_item_after_retry_pool_replacement(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path))
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0.01")
        seen, on_result = self._collect()
        failures = []
        results = fan_out(
            _flaky_square, [2, 3, 4], jobs=2, failures=failures,
            on_result=on_result,
        )
        assert results == [4, 9, 16]
        # Every item crashed its first pool and was retried on a fresh
        # one — yet each streamed exactly once, with the right value.
        assert failures and all(f.resolution == "retried" for f in failures)
        assert sorted(seen) == [(0, 2, 4), (1, 3, 9), (2, 4, 16)]

    def test_fires_once_per_item_in_serial_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        monkeypatch.setenv("REPRO_WORKER_BACKOFF", "0")
        seen, on_result = self._collect()
        results = fan_out(
            _raise_in_pool, [1, 2, 3], jobs=2, on_result=on_result
        )
        assert results == [3, 6, 9]
        assert sorted(seen) == [(0, 1, 3), (1, 2, 6), (2, 3, 9)]

    def test_fires_in_pure_serial_mode(self):
        seen, on_result = self._collect()
        assert fan_out(
            lambda x: x + 1, [7, 8], jobs=1, on_result=on_result
        ) == [8, 9]
        assert seen == [(0, 7, 8), (1, 8, 9)]

    def test_run_units_streams_each_unit(self, tmp_path):
        units = [
            RunUnit("hashmap", eager_config(), TXNS, SEED),
            RunUnit("btree", eager_config(), TXNS, SEED),
        ]
        seen, on_result = self._collect()
        results = run_units(
            units, jobs=2, cache_dir=tmp_path, on_result=on_result
        )
        assert len(seen) == 2
        by_index = {index: result for index, _unit, result in seen}
        for index, result in enumerate(results):
            assert by_index[index].cycles == result.cycles


class TestResolveJobs:
    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1


class TestDiskTraceCache:
    def test_cold_generate_warm_load_identical(self, tmp_path):
        cold = TraceCache(tmp_path)
        trace = cold.get("hashmap", TXNS, 1024, SEED)
        assert cold.store.misses == 1 and cold.store.hits == 0

        warm = TraceCache(tmp_path)
        loaded = warm.get("hashmap", TXNS, 1024, SEED)
        assert warm.store.hits == 1 and warm.store.misses == 0
        assert loaded == trace
        # ...and the replayed trace produces an identical RunResult.
        a = run_trace(eager_config(), trace, "hashmap", TXNS)
        b = run_trace(eager_config(), loaded, "hashmap", TXNS)
        assert (a.cycles, a.instructions, a.stats) == (
            b.cycles,
            b.instructions,
            b.stats,
        )

    def test_distinct_keys_distinct_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        keys = [
            ("hashmap", TXNS, 1024, SEED),
            ("hashmap", TXNS, 1024, SEED + 1),
            ("hashmap", TXNS + 1, 1024, SEED),
            ("hashmap", TXNS, 512, SEED),
            ("btree", TXNS, 1024, SEED),
        ]
        assert len({store.digest(k) for k in keys}) == len(keys)
        assert len({store.path_for(k) for k in keys}) == len(keys)

    def test_corrupt_entry_degrades_to_regeneration(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = cache.get("hashmap", TXNS, 1024, SEED)
        path = cache.store.path_for(("hashmap", TXNS, 1024, SEED))
        path.write_bytes(b"not an npz file")

        fresh = TraceCache(tmp_path)
        regenerated = fresh.get("hashmap", TXNS, 1024, SEED)
        assert regenerated == trace
        assert fresh.store.misses == 1

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        cache = TraceCache()
        assert cache.store is None
        cache.get("hashmap", TXNS, 1024, SEED)

    def test_env_dir_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "sub"))
        cache = TraceCache()
        cache.get("hashmap", TXNS, 1024, SEED)
        assert list((tmp_path / "sub").glob("*.npz"))

    def test_deterministic_across_hash_seeds(self, tmp_path):
        # Regression: trace generation once keyed the workload RNG off
        # salted str hash(), so traces differed per interpreter process.
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        script = (
            "from repro.workloads import generate_trace;"
            "import hashlib;"
            "t = generate_trace('hashmap', 20, 1024, 1);"
            "print(hashlib.sha256(repr(t).encode()).hexdigest())"
        )
        digests = set()
        for hash_seed in ("0", "1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PYTHONPATH": src,
                    "PATH": "/usr/bin:/bin",
                },
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestWarmPool:
    """The service's persistent pool: streaming completions, not batches."""

    def _units(self, count=3):
        config = eager_config()
        return [
            RunUnit("hashmap", config, TXNS, SEED + i) for i in range(count)
        ]

    def test_streams_results_identical_to_direct_execution(self, tmp_path):
        from repro.harness.parallel import WarmPool, execute_unit

        units = self._units()
        done = threading.Event()
        landed = {}

        def on_done(unit, result, error):
            landed[unit.seed] = (result, error)
            if len(landed) == len(units):
                done.set()

        with WarmPool(2, cache_dir=tmp_path / "traces") as pool:
            assert pool.jobs == 2
            pool.submit_batch(units, on_done)
            assert done.wait(timeout=120)
            assert pool.in_flight == 0

        serial_cache = TraceCache(tmp_path / "serial")
        for unit in units:
            result, error = landed[unit.seed]
            assert error is None
            assert result == execute_unit(unit, serial_cache)

    def test_submissions_survive_across_batches(self, tmp_path):
        # The pool (and its workers' trace caches) stays warm between
        # submissions — that is its whole reason to exist.
        from repro.harness.parallel import WarmPool

        done = threading.Event()
        results = []

        def on_done(_unit, result, error):
            results.append((result, error))
            if len(results) == 2:
                done.set()

        pool = WarmPool(2, cache_dir=tmp_path / "traces")
        try:
            first, second = self._units(2)
            pool.submit(first, on_done)
            pool.submit(second, on_done)
            assert done.wait(timeout=120)
            assert pool.submitted == 2
            assert pool.completed == 2
            assert all(error is None for _r, error in results)
        finally:
            pool.close(wait=True)

    def test_closed_pool_refuses_submissions(self, tmp_path):
        from repro.harness.parallel import WarmPool

        pool = WarmPool(2, cache_dir=tmp_path / "traces")
        pool.close(wait=True)
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(self._units(1)[0], lambda *a: None)
