"""Tier-1 tests for the fleet supervision plane and its env knobs.

Fast and subprocess-light: the heartbeat monitor runs against fake
worker handles and a tiny threaded health responder; the only real
subprocess is the start-timeout test, which pins a worker command that
can never become ready.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

import repro.fleet.dispatcher as dispatcher_mod
from repro.fleet.dispatcher import (
    FleetError,
    ServiceWorker,
    idle_poll,
    worker_start_timeout,
    worker_stop_timeout,
)
from repro.fleet.supervisor import (
    HeartbeatMonitor,
    SupervisionConfig,
    SupervisionLog,
)
from repro.service import protocol as proto


# ======================================================================
# Config + env knobs
# ======================================================================
class TestSupervisionConfig:
    def test_zero_value_is_inert(self):
        config = SupervisionConfig()
        assert not config.heartbeat_enabled
        assert config.respawn_budget == 0

    def test_effective_stale_after_defaults_to_three_beats(self):
        config = SupervisionConfig(heartbeat_interval=0.2)
        assert config.effective_stale_after == pytest.approx(0.6)
        explicit = SupervisionConfig(heartbeat_interval=0.2, stale_after=1.5)
        assert explicit.effective_stale_after == 1.5

    def test_from_env_reads_repro_fleet_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "0.25")
        monkeypatch.setenv("REPRO_FLEET_STALE_AFTER", "2.0")
        monkeypatch.setenv("REPRO_FLEET_RESPAWNS", "5")
        monkeypatch.setenv("REPRO_FLEET_BREAKER_THRESHOLD", "7")
        config = SupervisionConfig.from_env()
        assert config.heartbeat_interval == 0.25
        assert config.stale_after == 2.0
        assert config.respawn_budget == 5
        assert config.breaker_threshold == 7
        assert config.heartbeat_enabled

    def test_from_env_defaults_stay_off(self, monkeypatch):
        for name in (
            "REPRO_FLEET_HEARTBEAT",
            "REPRO_FLEET_STALE_AFTER",
            "REPRO_FLEET_RESPAWNS",
        ):
            monkeypatch.delenv(name, raising=False)
        config = SupervisionConfig.from_env()
        assert not config.heartbeat_enabled
        assert config.respawn_budget == 0

    def test_breaker_factory_uses_config_knobs(self):
        config = SupervisionConfig(breaker_threshold=2, breaker_max_trips=1)
        breaker = config.breaker()
        breaker.record_failure("a")
        breaker.record_failure("b")
        assert breaker.quarantined


class TestFleetEnvKnobs:
    def test_timeouts_default_without_env(self, monkeypatch):
        for name in (
            "REPRO_FLEET_START_TIMEOUT",
            "REPRO_FLEET_STOP_TIMEOUT",
            "REPRO_FLEET_IDLE_POLL",
        ):
            monkeypatch.delenv(name, raising=False)
        assert worker_start_timeout() == dispatcher_mod.WORKER_START_TIMEOUT
        assert worker_stop_timeout() == dispatcher_mod.WORKER_STOP_TIMEOUT
        assert idle_poll() > 0

    def test_env_overrides_are_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_START_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_FLEET_STOP_TIMEOUT", "3.5")
        monkeypatch.setenv("REPRO_FLEET_IDLE_POLL", "0.07")
        assert worker_start_timeout() == 12.5
        assert worker_stop_timeout() == 3.5
        assert idle_poll() == 0.07

    def test_start_timeout_error_names_the_env_var(
        self, tmp_path, monkeypatch
    ):
        # Pin the worker command to something that never touches its
        # ready file, so the configured timeout must fire — and the
        # error must tell the operator which knob to turn.
        monkeypatch.setenv("REPRO_FLEET_START_TIMEOUT", "0.3")
        real_popen = dispatcher_mod.subprocess.Popen
        monkeypatch.setattr(
            dispatcher_mod.subprocess,
            "Popen",
            lambda *args, **kwargs: real_popen(["sleep", "30"]),
        )
        worker = ServiceWorker("worker-x", tmp_path)
        with pytest.raises(FleetError) as excinfo:
            worker.start()
        worker.kill()
        assert "REPRO_FLEET_START_TIMEOUT" in str(excinfo.value)
        assert "0.3" in str(excinfo.value)


class TestWorkerIncarnations:
    def test_respawn_paths_carry_the_instance(self, tmp_path):
        worker = ServiceWorker("worker-3", tmp_path)
        assert worker.socket_path.endswith("worker-3.sock")
        assert worker.client_socket_path == worker.socket_path
        worker.instance = 2
        worker._set_paths()
        assert worker.socket_path.endswith("worker-3.r2.sock")
        assert worker.ready_path.name == "worker-3.r2.ready"
        # A chaos proxy repoint never outlives the incarnation.
        assert worker.client_socket_path == worker.socket_path


# ======================================================================
# Supervision log
# ======================================================================
class TestSupervisionLog:
    def test_record_filter_and_payload(self):
        log = SupervisionLog()
        log.record("worker-start", "worker-0", "pid 1")
        log.record("hang-detected", "worker-0", "stale")
        log.record("worker-start", "worker-1", "pid 2")
        assert len(log.events()) == 3
        assert [e.worker_id for e in log.events("worker-start")] == [
            "worker-0",
            "worker-1",
        ]
        payload = log.to_payload()
        assert payload[1]["kind"] == "hang-detected"
        assert payload[1]["worker"] == "worker-0"
        assert payload[1]["mono"] > 0


# ======================================================================
# Heartbeat monitor
# ======================================================================
class _FakeWorker:
    def __init__(self, worker_id: str, socket_path: str, alive: bool = True):
        self.worker_id = worker_id
        self.instance = 0
        self.socket_path = socket_path
        self.alive = alive


class _HealthResponder:
    """Threaded unix server speaking just enough protocol for probes."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(8)
        threading.Thread(target=self._loop, daemon=True).start()

    def _loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                conn.sendall(
                    proto.encode_message(
                        {"type": "hello", "version": proto.PROTOCOL_VERSION}
                    )
                )
                reader = conn.makefile("rb")
                line = reader.readline()
                if line and json.loads(line).get("type") == "health":
                    conn.sendall(
                        proto.encode_message(
                            {"type": "health", "status": "ok"}
                        )
                    )
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestHeartbeatMonitor:
    CONFIG = SupervisionConfig(
        heartbeat_interval=0.05, stale_after=0.15, probe_timeout=0.1
    )

    def test_healthy_worker_is_never_flagged(self, tmp_path):
        responder = _HealthResponder(str(tmp_path / "w.sock"))
        worker = _FakeWorker("worker-0", responder.path)
        log = SupervisionLog()
        stale = []
        monitor = HeartbeatMonitor(
            lambda: [worker], self.CONFIG, log, on_stale=stale.append
        )
        monitor.start()
        try:
            assert _wait_until(lambda: monitor.probes >= 5)
            time.sleep(3 * self.CONFIG.stale_after)
        finally:
            monitor.stop()
            responder.close()
        assert stale == []
        assert monitor.hangs == 0
        assert log.events("hang-detected") == []

    def test_unreachable_worker_is_flagged_exactly_once(self, tmp_path):
        worker = _FakeWorker("worker-0", str(tmp_path / "missing.sock"))
        log = SupervisionLog()
        stale = []
        monitor = HeartbeatMonitor(
            lambda: [worker], self.CONFIG, log, on_stale=stale.append
        )
        monitor.start()
        try:
            assert _wait_until(lambda: stale)
            time.sleep(3 * self.CONFIG.stale_after)  # no double-flag
        finally:
            monitor.stop()
        assert stale == [worker]
        assert monitor.hangs == 1
        (event,) = log.events("hang-detected")
        assert event.worker_id == "worker-0"
        assert "stale_after" in event.detail

    def test_a_new_incarnation_gets_a_clean_slate(self, tmp_path):
        worker = _FakeWorker("worker-0", str(tmp_path / "missing.sock"))
        log = SupervisionLog()
        stale = []
        monitor = HeartbeatMonitor(
            lambda: [worker], self.CONFIG, log, on_stale=stale.append
        )
        monitor.start()
        try:
            assert _wait_until(lambda: len(stale) == 1)
            worker.instance = 1  # "respawned", still unreachable
            assert _wait_until(lambda: len(stale) == 2)
        finally:
            monitor.stop()
        assert monitor.hangs == 2

    def test_dead_workers_are_not_probed(self, tmp_path):
        worker = _FakeWorker(
            "worker-0", str(tmp_path / "missing.sock"), alive=False
        )
        log = SupervisionLog()
        stale = []
        monitor = HeartbeatMonitor(
            lambda: [worker], self.CONFIG, log, on_stale=stale.append
        )
        monitor.start()
        try:
            time.sleep(4 * self.CONFIG.stale_after)
        finally:
            monitor.stop()
        assert stale == []
        assert monitor.probes == 0

    def test_starting_workers_are_not_probed_until_ready(self, tmp_path):
        # An incarnation inside start() has bumped `instance` but isn't
        # listening yet; the staleness clock must not start until the
        # dispatcher marks it ready, or slow startup reads as a hang.
        worker = _FakeWorker("worker-0", str(tmp_path / "missing.sock"))
        worker.ready = False
        log = SupervisionLog()
        stale = []
        monitor = HeartbeatMonitor(
            lambda: [worker], self.CONFIG, log, on_stale=stale.append
        )
        monitor.start()
        try:
            time.sleep(4 * self.CONFIG.stale_after)
            assert monitor.probes == 0
            worker.ready = True  # start() finished; now fair game
            assert _wait_until(lambda: stale)
        finally:
            monitor.stop()
        assert stale == [worker]
        assert monitor.hangs == 1
