"""Characterization tests pinning the EXPERIMENTS.md "known deltas".

The reproduction intentionally diverges from the paper in a few
documented places ("Known deltas (summary)" in EXPERIMENTS.md).  Each
test here pins one delta *as currently measured*, so a model change
that silently flips a documented divergence — or silently "fixes" one
without the doc being updated — fails loudly.  Every assertion cites
the delta it guards.

These are direction/shape assertions, deliberately looser than the
golden gate (tests/test_golden_results.py), which pins the same runs
to exact values.
"""

from __future__ import annotations

import pytest

from repro.config import MiSUDesign
from repro.harness.experiments import DESIGNS, run_experiment
from repro.harness.golden import TIER1_SEED, TIER1_TRANSACTIONS


@pytest.fixture(scope="module")
def fig16():
    """Per-workload lazy-ToC speedups (means live in tier1_metrics)."""
    return run_experiment(
        "fig16", transactions=TIER1_TRANSACTIONS, seed=TIER1_SEED
    )


def _fig16_speedup(fig16, workload: str, design: MiSUDesign) -> float:
    column = 1 + list(DESIGNS).index(design)
    row = next(r for r in fig16.rows if r[0] == workload)
    return row[column]


class TestDelta2Fig15Saturation:
    """Delta 2: Figure 15 saturates by 28 entries at a ~2x ceiling
    (2.12x at paper scale vs the paper's 1.88x)."""

    def test_retries_vanish_as_the_wpq_grows(self, tier1_metrics):
        retries = {
            size: tier1_metrics[f"fig15.mean_retries_kwr.wpq{size}"]
            for size in (13, 28, 57, 113)
        }
        # 13 entries thrash; 28 nearly absorbs the bursts; 57+ never
        # retry at all.
        assert retries[13] > 50.0
        assert retries[28] < 20.0
        assert retries[13] > 10.0 * retries[28]
        assert retries[57] == 0.0
        assert retries[113] == 0.0

    def test_speedup_saturates_by_28_entries(self, tier1_metrics):
        speedup = {
            size: tier1_metrics[f"fig15.mean_speedup.wpq{size}"]
            for size in (13, 28, 57, 113)
        }
        # The big jump is 13 -> 28; everything past 28 is within 2%.
        assert speedup[28] > speedup[13] * 1.15
        assert speedup[57] == pytest.approx(speedup[113], rel=0.02)
        assert speedup[28] == pytest.approx(speedup[113], rel=0.02)

    def test_saturated_ceiling_near_two_x(self, tier1_metrics):
        # ~1.98x at tier-1 scale (2.12x at the paper's transaction
        # count) vs the paper's 1.88x — delta 2's documented gap.
        ceiling = tier1_metrics["fig15.mean_speedup.wpq113"]
        assert 1.8 <= ceiling <= 2.3


class TestDelta3LazyPostDipsBelowParity:
    """Delta 3: under lazy ToC, Post-WPQ-MiSU dips below 1.0 on
    burst-heavy workloads where the paper reports 1.071 — we take the
    single-deferred-op serialization literally."""

    @pytest.mark.parametrize("workload", ["hashmap", "redis"])
    def test_post_wpq_below_parity_on_burst_heavy_workloads(
        self, fig16, workload
    ):
        speedup = _fig16_speedup(fig16, workload, MiSUDesign.POST_WPQ)
        assert speedup < 1.0, (
            f"{workload}: lazy Post-WPQ speedup {speedup:.3f} no longer "
            "below parity — EXPERIMENTS.md delta 3 needs updating"
        )

    def test_post_is_the_lazy_toc_laggard(self, tier1_metrics):
        post = tier1_metrics["fig16.mean_speedup.post-wpq"]
        assert post < tier1_metrics["fig16.mean_speedup.full-wpq"]
        assert post < tier1_metrics["fig16.mean_speedup.partial-wpq"]

    def test_lazy_toc_narrows_every_design_advantage(self, tier1_metrics):
        # The lazy backend is fast, so Dolos' fixed Mi-SU cost buys
        # less: Figure 16 means sit well below Figure 12's for every
        # design (the paper shows the same compression).
        for design in DESIGNS:
            slug = design.value
            lazy = tier1_metrics[f"fig16.mean_speedup.{slug}"]
            eager = tier1_metrics[f"fig12.mean_speedup.{slug}"]
            assert lazy < eager, slug


class TestDelta4NStoreRetries:
    """Delta 4: NStore:YCSB retries are ~0 where the paper reports
    1.1-182 — our NStore model spreads persists even more evenly."""

    def test_nstore_ycsb_retries_near_zero_for_every_design(
        self, tier1_metrics
    ):
        for design in DESIGNS:
            slug = design.value
            retries = tier1_metrics[f"tab02.nstore_ycsb_retries.{slug}"]
            assert retries <= 5.0, (
                f"{slug}: NStore:YCSB retries/KWR {retries:.2f} no "
                "longer ~0 — EXPERIMENTS.md delta 4 needs updating"
            )
