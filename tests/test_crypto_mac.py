"""Tests for MAC computation and field encoding."""

import pytest

from repro.config import MAC_BYTES
from repro.crypto.mac import compute_mac, mac_over_fields, macs_equal


class TestComputeMac:
    def test_default_length(self):
        assert len(compute_mac(b"k", b"m")) == MAC_BYTES

    def test_deterministic(self):
        assert compute_mac(b"k", b"m") == compute_mac(b"k", b"m")

    def test_key_dependence(self):
        assert compute_mac(b"k1", b"m") != compute_mac(b"k2", b"m")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            compute_mac(b"", b"m")


class TestMacOverFields:
    def test_field_boundaries_matter(self):
        """(b"ab", b"c") must differ from (b"a", b"bc")."""
        assert mac_over_fields(b"k", b"ab", b"c") != mac_over_fields(b"k", b"a", b"bc")

    def test_type_tags_matter(self):
        assert mac_over_fields(b"k", 1) != mac_over_fields(b"k", "1")

    def test_int_fields(self):
        assert mac_over_fields(b"k", 5, 6) != mac_over_fields(b"k", 6, 5)

    def test_huge_int_supported(self):
        big = 2**100
        assert mac_over_fields(b"k", big) == mac_over_fields(b"k", big)
        assert mac_over_fields(b"k", big) != mac_over_fields(b"k", big + 1)

    def test_negative_int(self):
        assert mac_over_fields(b"k", -1) != mac_over_fields(b"k", 1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            mac_over_fields(b"k", 3.14)

    def test_mixed_fields(self):
        mac = mac_over_fields(b"k", "data", 0x1000, 42, b"\x00" * 64)
        assert len(mac) == MAC_BYTES


class TestMacsEqual:
    def test_equal(self):
        assert macs_equal(b"\x01\x02", b"\x01\x02")

    def test_unequal_content(self):
        assert not macs_equal(b"\x01\x02", b"\x01\x03")

    def test_unequal_length(self):
        assert not macs_equal(b"\x01", b"\x01\x02")
