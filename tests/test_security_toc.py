"""Tests for the SGX-style Tree of Counters."""

import pytest

from repro.security.toc import TreeOfCounters

KEY = b"\x02" * 32


@pytest.fixture
def toc():
    return TreeOfCounters(KEY, num_leaves=512, arity=8)


class TestVersions:
    def test_initial_version_zero(self, toc):
        assert toc.leaf_version(0) == 0

    def test_bump_increments_leaf_version(self, toc):
        toc.bump_leaf(5)
        assert toc.leaf_version(5) == 1
        toc.bump_leaf(5)
        assert toc.leaf_version(5) == 2

    def test_bump_advances_root_counter(self, toc):
        toc.bump_leaf(1)
        toc.bump_leaf(2)
        assert toc.root_counter == 2

    def test_bump_touches_whole_path(self, toc):
        touched = toc.bump_leaf(100)
        assert len(touched) == toc.height

    def test_other_leaves_unchanged(self, toc):
        toc.bump_leaf(5)
        assert toc.leaf_version(6) == 0

    def test_leaf_bounds(self, toc):
        with pytest.raises(IndexError):
            toc.bump_leaf(512)


class TestVerification:
    def test_fresh_bumped_path_verifies(self, toc):
        toc.bump_leaf(5)
        assert toc.verify_leaf_path(5)

    def test_sibling_paths_stay_consistent(self, toc):
        toc.bump_leaf(8)
        toc.bump_leaf(9)
        assert toc.verify_leaf_path(8)
        assert toc.verify_leaf_path(9)

    def test_counter_tamper_detected(self, toc):
        toc.bump_leaf(5)
        toc.tamper_counter(1, 5 // 8, 5 % 8, 99)
        assert not toc.verify_leaf_path(5)

    def test_mac_tamper_detected(self, toc):
        toc.bump_leaf(5)
        toc.tamper_mac(1, 5 // 8, b"\x00" * 8)
        assert not toc.verify_leaf_path(5)

    def test_rollback_detected_via_parent_counter(self, toc):
        """Rolling node-and-MAC back to an old consistent pair must fail
        because the parent's counter has moved on."""
        toc.bump_leaf(5)
        node = toc._node(1, 0)
        old_counters = list(node.counters)
        old_mac = node.mac
        toc.bump_leaf(5)  # moves parents forward
        node.counters = old_counters
        node.mac = old_mac
        assert not toc.verify_leaf_path(5)

    def test_root_counter_rollback_detected(self, toc):
        toc.bump_leaf(5)
        toc.root_counter -= 1
        assert not toc.verify_leaf_path(5)


class TestValidation:
    def test_num_leaves_validation(self):
        with pytest.raises(ValueError):
            TreeOfCounters(KEY, 0)

    def test_node_update_count(self, toc):
        toc.bump_leaf(0)
        assert toc.node_updates == toc.height
