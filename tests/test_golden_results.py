"""Golden-result regression suite over ``results/golden.json``.

The snapshot pins the reproduced headline numbers — Figure 12/16 mean
speedups, the Figure 15 saturation curve, the Table 2 NStore:YCSB
retry row, Table 3 storage, and the Section 5.5 recovery cycles — at
the tier-1 scale (``transactions=60, seed=1``).  The simulator is
deterministic, so a clean tree reproduces every value exactly; the
snapshot's documented tolerances exist only to absorb deliberate,
reviewed model refinements, and the self-test below proves they stay
tight enough to catch a ±10% drift on every metric.

Refreshing after an intentional model change::

    python -m repro.harness golden --update
"""

from __future__ import annotations

import pytest

from repro.harness import golden
from repro.workloads import GENERATOR_VERSION

FAMILIES = (
    "fig12.", "fig15.", "fig16.", "newdesigns.", "tab02.", "tab03.",
    "sec55.", "loadcurve.",
)


@pytest.fixture(scope="module")
def snapshot():
    return golden.load_golden()


def _family(snapshot: dict, prefix: str) -> dict:
    metrics = {
        name: entry
        for name, entry in snapshot["metrics"].items()
        if name.startswith(prefix)
    }
    assert metrics, f"no golden metrics under {prefix!r}"
    return {"metrics": metrics}


class TestSnapshotShape:
    def test_meta_matches_tier1_settings(self, snapshot):
        meta = snapshot["meta"]
        assert meta["transactions"] == golden.TIER1_TRANSACTIONS
        assert meta["seed"] == golden.TIER1_SEED
        # A workload-generator bump invalidates the snapshot the same
        # way it invalidates disk traces: the gate must be regenerated.
        assert meta["generator_version"] == GENERATOR_VERSION

    def test_every_family_is_snapshotted(self, snapshot):
        for prefix in FAMILIES:
            _family(snapshot, prefix)

    def test_static_families_declare_zero_tolerance(self, snapshot):
        # Table 3 storage and the §5.5 recovery arithmetic are exact
        # integers; any movement is a real model change, not noise.
        for prefix in ("tab03.", "sec55."):
            for name, entry in _family(snapshot, prefix)["metrics"].items():
                assert entry.get("abs_tol") == 0, name
                assert "rel_tol" not in entry, name

    def test_dynamic_tolerances_stay_under_drift_threshold(self, snapshot):
        # Every relative band must sit well below the 10% drift the
        # gate promises to catch.
        for name, entry in snapshot["metrics"].items():
            rel = float(entry.get("rel_tol", 0.0))
            assert rel < 0.10, f"{name}: rel_tol {rel} too loose"


class TestGoldenGate:
    @pytest.mark.parametrize("prefix", FAMILIES)
    def test_family_within_tolerance(self, tier1_metrics, snapshot, prefix):
        measured = {
            name: value
            for name, value in tier1_metrics.items()
            if name.startswith(prefix)
        }
        failures = golden.compare(measured, _family(snapshot, prefix))
        assert not failures, "\n".join(failures)

    def test_full_bundle_matches_snapshot_exactly_one_to_one(
        self, tier1_metrics, snapshot
    ):
        # Both directions: nothing missing from the recomputation,
        # nothing computed that the snapshot does not pin.
        failures = golden.compare(tier1_metrics, snapshot)
        assert not failures, "\n".join(failures)


class TestGateSelfTest:
    def test_ten_percent_perturbation_always_caught(self, snapshot):
        # The acceptance bar: perturbing any single metric by ±10%
        # (or, for ~0-valued metrics, past their absolute band) must
        # trip the gate.  Mirrors ``golden --perturb 0.1``.
        undetected = golden.perturbation_self_test(snapshot, 0.10)
        assert undetected == []

    def test_small_drift_inside_tolerance_passes(self, snapshot):
        # The bands are real bands, not exact equality: a 1% nudge of
        # a relative-tolerance metric must NOT fail the gate.
        baseline = {
            name: entry["value"]
            for name, entry in snapshot["metrics"].items()
        }
        for name, entry in snapshot["metrics"].items():
            if float(entry.get("rel_tol", 0.0)) < 0.01:
                continue
            shifted = dict(baseline)
            shifted[name] = entry["value"] * 1.01
            assert golden.compare(shifted, snapshot) == [], name

    def test_static_metrics_fail_on_any_movement(self, snapshot):
        baseline = {
            name: entry["value"]
            for name, entry in snapshot["metrics"].items()
        }
        for prefix in ("tab03.", "sec55."):
            for name in _family(snapshot, prefix)["metrics"]:
                shifted = dict(baseline)
                shifted[name] = shifted[name] + 1
                failures = golden.compare(shifted, snapshot)
                assert any(name in f for f in failures), name

    def test_missing_metric_is_a_failure(self, snapshot):
        baseline = {
            name: entry["value"]
            for name, entry in snapshot["metrics"].items()
        }
        dropped = next(iter(baseline))
        del baseline[dropped]
        failures = golden.compare(baseline, snapshot)
        assert any("missing" in f and dropped in f for f in failures)
