"""Tests for the Timeline instrumentation and multi-seed statistics."""

import pytest

from repro.config import ControllerKind, CoreConfig, SimConfig
from repro.core.controller import make_controller
from repro.core.requests import WriteKind, WriteRequest
from repro.engine import Simulator
from repro.harness.multiseed import (
    MetricStats,
    compare,
    paired_speedups,
    sweep_seeds,
)
from repro.instrumentation import Timeline


class TestTimeline:
    def test_sample_and_series(self):
        tl = Timeline()
        tl.sample(0, "x", 1.0)
        tl.sample(10, "x", 3.0)
        assert tl.series("x") == [(0, 1.0), (10, 3.0)]
        assert tl.channels() == ["x"]

    def test_summary(self):
        tl = Timeline()
        for t, v in enumerate([1, 2, 3, 3]):
            tl.sample(t, "x", v)
        summary = tl.summarize("x")
        assert summary.samples == 4
        assert summary.minimum == 1
        assert summary.maximum == 3
        assert summary.mean == pytest.approx(2.25)
        assert summary.at_maximum == pytest.approx(0.5)

    def test_empty_summary(self):
        assert Timeline().summarize("missing").samples == 0

    def test_events_bounded(self):
        tl = Timeline(max_events=2)
        for i in range(5):
            tl.event(i, "e")
        assert len(tl.events()) == 2
        assert tl.dropped_events == 3

    def test_event_filter(self):
        tl = Timeline()
        tl.event(0, "a")
        tl.event(1, "b")
        assert len(tl.events("a")) == 1

    def test_bucketize_shape(self):
        tl = Timeline()
        for t in range(100):
            tl.sample(t, "x", t)
        buckets = tl.bucketize("x", 10)
        assert len(buckets) == 10
        assert buckets[0] < buckets[-1]

    def test_sparkline_width(self):
        tl = Timeline()
        for t in range(100):
            tl.sample(t, "x", t % 7)
        assert len(tl.sparkline("x", width=40)) == 40

    def test_sparkline_empty(self):
        assert Timeline().sparkline("x") == ""

    def test_report_mentions_channels(self):
        tl = Timeline()
        tl.sample(0, "wpq", 5)
        assert "wpq" in tl.report()


class TestControllerTimeline:
    def test_occupancy_recorded(self):
        sim = Simulator()
        controller = make_controller(sim, SimConfig())
        tl = Timeline()
        controller.attach_timeline(tl)
        for i in range(5):
            controller.submit_write(
                WriteRequest(0x1000 + i * 64, WriteKind.PERSIST)
            )
        sim.run()
        summary = tl.summarize("wpq.occupancy")
        assert summary.samples > 0
        assert summary.maximum >= 1

    def test_retry_events_recorded(self):
        sim = Simulator()
        controller = make_controller(sim, SimConfig())
        tl = Timeline()
        controller.attach_timeline(tl)
        for i in range(40):
            controller.submit_write(
                WriteRequest(0x1000 + i * 64, WriteKind.PERSIST)
            )
        sim.run()
        assert len(tl.events("wpq.retry")) == controller.wpq.retry_events
        assert controller.wpq.retry_events > 0


class TestMetricStats:
    def test_mean_and_stdev(self):
        stats = MetricStats([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.stdev == pytest.approx(1.0)
        assert stats.n == 3

    def test_single_value_no_variance(self):
        stats = MetricStats([5.0])
        assert stats.stdev == 0.0
        assert stats.ci95() == 0.0

    def test_str_format(self):
        assert "n=2" in str(MetricStats([1.0, 2.0]))


class TestSeedSweeps:
    def test_sweep_runs_all_seeds(self):
        sweep = sweep_seeds(SimConfig(), "ctree", transactions=15, seeds=3)
        assert len(sweep.runs) == 3
        assert sweep.cycles.n == 3
        assert sweep.cycles.mean > 0

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            sweep_seeds(SimConfig(), "ctree", 10, seeds=0)

    def test_compare_speedup_above_one(self):
        baseline = SimConfig().with_(controller=ControllerKind.PRE_WPQ_SECURE)
        stats = compare(baseline, SimConfig(), "ctree", transactions=15, seeds=3)
        assert stats.n == 3
        assert stats.mean > 1.0


class TestStrictPersistency:
    def test_strict_slower_than_epoch(self):
        from repro.harness.runner import run_trace
        from repro.workloads import generate_trace

        trace = generate_trace("ctree", 20, 512, seed=1)
        epoch = run_trace(SimConfig(), trace, "t", 20)
        strict = run_trace(
            SimConfig().with_(core=CoreConfig(persist_model="strict")),
            trace, "t", 20,
        )
        assert strict.cycles > epoch.cycles

    def test_strict_amplifies_dolos_gain(self):
        from repro.harness.runner import run_trace, speedup
        from repro.workloads import generate_trace

        trace = generate_trace("ctree", 25, 1024, seed=1)

        def gain(core):
            baseline = run_trace(
                SimConfig().with_(
                    controller=ControllerKind.PRE_WPQ_SECURE, core=core
                ),
                trace, "t", 25,
            )
            dolos = run_trace(SimConfig().with_(core=core), trace, "t", 25)
            return speedup(baseline, dolos)

        assert gain(CoreConfig(persist_model="strict")) > gain(CoreConfig())


class TestPairedSweeps:
    """Regression: compare() must not silently truncate unequal sweeps."""

    def _sweep(self, n, first_seed=1):
        sweep = sweep_seeds(
            SimConfig(), "ctree", transactions=10, seeds=n, first_seed=first_seed
        )
        return sweep

    def test_length_mismatch_raises(self):
        base = self._sweep(3)
        fast = self._sweep(3)
        fast.runs.pop()
        fast.seeds.pop()
        with pytest.raises(ValueError, match="unequal length"):
            paired_speedups(base, fast)

    def test_seed_mismatch_raises(self):
        base = self._sweep(2, first_seed=1)
        fast = self._sweep(2, first_seed=5)
        with pytest.raises(ValueError, match="seed-for-seed"):
            paired_speedups(base, fast)

    def test_matched_sweeps_pair(self):
        base = self._sweep(2)
        fast = self._sweep(2)
        stats = paired_speedups(base, fast)
        assert stats.n == 2
        assert stats.mean == pytest.approx(1.0)

    def test_sweep_records_seeds(self):
        sweep = self._sweep(3, first_seed=7)
        assert sweep.seeds == [7, 8, 9]
