"""Tests for the four memory-controller organisations."""

import pytest

from repro.config import ControllerKind, MiSUDesign, SimConfig
from repro.core.controller import (
    DolosController,
    NonSecureIdealController,
    PostWPQHypotheticalController,
    PreWPQSecureController,
    make_controller,
)
from repro.core.requests import WriteKind, WriteRequest
from repro.engine import Simulator


def build(kind=ControllerKind.DOLOS, **changes):
    config = SimConfig().with_(controller=kind, **changes)
    sim = Simulator()
    controller = make_controller(sim, config)
    return sim, controller


def submit_persist(controller, address, data=None):
    return controller.submit_write(
        WriteRequest(address, WriteKind.PERSIST, data=data)
    )


class TestFactory:
    def test_kinds_map_to_classes(self):
        cases = {
            ControllerKind.DOLOS: DolosController,
            ControllerKind.PRE_WPQ_SECURE: PreWPQSecureController,
            ControllerKind.POST_WPQ_HYPOTHETICAL: PostWPQHypotheticalController,
            ControllerKind.NON_SECURE_IDEAL: NonSecureIdealController,
        }
        for kind, cls in cases.items():
            _, controller = build(kind)
            assert isinstance(controller, cls)

    def test_wpq_capacity_per_kind(self):
        assert build(ControllerKind.NON_SECURE_IDEAL)[1].wpq.capacity == 16
        assert build(ControllerKind.PRE_WPQ_SECURE)[1].wpq.capacity == 16
        assert build(ControllerKind.POST_WPQ_HYPOTHETICAL)[1].wpq.capacity == 16
        assert build(ControllerKind.DOLOS)[1].wpq.capacity == 13
        dolos_full = build(ControllerKind.DOLOS, misu_design=MiSUDesign.FULL_WPQ)[1]
        assert dolos_full.wpq.capacity == 16


class TestPersistCompletion:
    def test_ideal_persists_immediately(self):
        sim, controller = build(ControllerKind.NON_SECURE_IDEAL)
        times = []
        done = submit_persist(controller, 0x1000)
        done.subscribe(lambda _v: times.append(sim.now))
        sim.run()
        assert times and times[0] <= 4

    def test_baseline_pays_security_before_persist(self):
        sim, controller = build(ControllerKind.PRE_WPQ_SECURE)
        times = []
        done = submit_persist(controller, 0x1000)
        done.subscribe(lambda _v: times.append(sim.now))
        sim.run()
        security = controller.config.security
        expected_min = (
            security.aes_latency + security.masu_critical_hash_latency
        )
        assert times[0] >= expected_min

    def test_dolos_partial_persists_after_one_mac(self):
        sim, controller = build(ControllerKind.DOLOS)
        times = []
        done = submit_persist(controller, 0x1000)
        done.subscribe(lambda _v: times.append(sim.now))
        sim.run()
        mac = controller.config.security.mac_latency
        assert mac <= times[0] < mac + 50

    def test_dolos_post_persists_almost_instantly(self):
        sim, controller = build(
            ControllerKind.DOLOS, misu_design=MiSUDesign.POST_WPQ
        )
        times = []
        done = submit_persist(controller, 0x1000)
        done.subscribe(lambda _v: times.append(sim.now))
        sim.run()
        assert times[0] <= 4

    def test_dolos_full_pays_two_macs(self):
        sim, controller = build(
            ControllerKind.DOLOS, misu_design=MiSUDesign.FULL_WPQ
        )
        times = []
        done = submit_persist(controller, 0x1000)
        done.subscribe(lambda _v: times.append(sim.now))
        sim.run()
        assert times[0] >= 2 * controller.config.security.mac_latency

    def test_persist_ordering_faster_for_dolos(self):
        """The paper's core claim at the unit level: persist latency
        Dolos << baseline for the same write stream."""

        def persist_time(kind):
            sim, controller = build(kind)
            times = []
            done = submit_persist(controller, 0x1000)
            done.subscribe(lambda _v: times.append(sim.now))
            sim.run()
            return times[0]

        assert persist_time(ControllerKind.DOLOS) < persist_time(
            ControllerKind.PRE_WPQ_SECURE
        )


class TestWPQBackpressure:
    def test_retries_counted_when_full(self):
        sim, controller = build(ControllerKind.DOLOS)
        for i in range(40):
            submit_persist(controller, 0x10000 + i * 64)
        sim.run()
        assert controller.wpq.retry_events > 0

    def test_all_persists_eventually_complete(self):
        sim, controller = build(ControllerKind.DOLOS)
        completed = []
        for i in range(40):
            done = submit_persist(controller, 0x10000 + i * 64)
            done.subscribe(lambda _v: completed.append(1))
        sim.run()
        assert len(completed) == 40

    def test_coalescing_merges_same_address(self):
        sim, controller = build(ControllerKind.DOLOS)
        submit_persist(controller, 0x1000)
        submit_persist(controller, 0x1000)
        sim.run()
        assert controller.wpq.coalesced >= 1

    def test_coalescing_can_be_disabled(self):
        sim, controller = build(ControllerKind.DOLOS, wpq_coalescing=False)
        submit_persist(controller, 0x1000)
        submit_persist(controller, 0x1000)
        sim.run()
        assert controller.wpq.coalesced == 0


class TestEvictionWrites:
    def test_eviction_returns_no_signal(self):
        _, controller = build(ControllerKind.DOLOS)
        result = controller.submit_write(
            WriteRequest(0x1000, WriteKind.EVICTION)
        )
        assert result is None

    def test_evictions_drain_through_masu(self):
        sim, controller = build(ControllerKind.DOLOS)
        controller.submit_write(WriteRequest(0x1000, WriteKind.EVICTION))
        sim.run()
        assert controller.stats.get("masu.writes") == 1


class TestReads:
    def test_wpq_read_hit_is_fast(self):
        sim, controller = build(ControllerKind.DOLOS)
        submit_persist(controller, 0x1000)
        latencies = []
        done = controller.read(0x1000)
        done.subscribe(latencies.append)
        sim.run()
        assert latencies[0] <= 2

    def test_read_miss_goes_to_nvm(self):
        sim, controller = build(ControllerKind.DOLOS)
        latencies = []
        done = controller.read(0x2000)
        done.subscribe(latencies.append)
        sim.run()
        assert latencies[0] >= controller.config.nvm.read_latency

    def test_ideal_read_has_no_verify_cost(self):
        def read_latency(kind):
            sim, controller = build(kind)
            latencies = []
            controller.read(0x2000).subscribe(latencies.append)
            sim.run()
            return latencies[0]

        assert read_latency(ControllerKind.NON_SECURE_IDEAL) < read_latency(
            ControllerKind.DOLOS
        )


class TestFunctionalDataPath:
    def test_dolos_write_lands_encrypted_in_nvm(self, line_factory):
        sim, controller = build(ControllerKind.DOLOS)
        data = line_factory("secret")
        submit_persist(controller, 0x1000, data)
        sim.run()
        stored = controller.nvm.read_line(0x1000)
        assert stored is not None
        assert stored != data
        assert controller.masu.secure_read(0x1000) == data

    def test_ideal_write_lands_plaintext(self, line_factory):
        sim, controller = build(ControllerKind.NON_SECURE_IDEAL)
        data = line_factory("plain")
        submit_persist(controller, 0x1000, data)
        sim.run()
        assert controller.nvm.read_line(0x1000) == data


class TestCrashPath:
    def test_dolos_crash_drains(self, line_factory):
        sim, controller = build(ControllerKind.DOLOS)
        for i in range(5):
            submit_persist(controller, 0x1000 + i * 64, line_factory(str(i)))
        sim.run(until=400)  # everything in WPQ, nothing processed
        records = controller.crash()
        assert len(records) >= 1

    def test_fig5c_crash_is_infeasible(self):
        _, controller = build(ControllerKind.POST_WPQ_HYPOTHETICAL)
        with pytest.raises(RuntimeError):
            controller.crash()

    def test_post_wpq_crash_completes_deferred_mac(self, line_factory):
        sim, controller = build(
            ControllerKind.DOLOS, misu_design=MiSUDesign.POST_WPQ
        )
        submit_persist(controller, 0x1000, line_factory("d"))
        sim.run(until=10)  # committed, deferred MAC still pending
        records = controller.crash()
        assert len(records) == 1
        assert records[0].mac is not None
