"""Property-based tests for the service protocol, plus the slow soak.

Hypothesis sweeps the protocol's invariants — wire roundtrips, job-key
injectivity over the canonical form, framing robustness against
arbitrary bytes — over the whole JobSpec space.  The soak test (slow
tier) reuses the smoke harness at a heavier client mix against a real
server subprocess.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.oracle.check import controller_matrix
from repro.service import protocol as proto
from repro.workloads import ALL_WORKLOADS

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
workloads = st.sampled_from(sorted(ALL_WORKLOADS))
designs = st.sampled_from(sorted(controller_matrix()))
overrides = st.fixed_dictionaries(
    {},
    optional={
        "transaction_size": st.integers(64, 8192),
        "adr_budget": st.sampled_from([16, 32, 64, 128]),
        "wpq_coalescing": st.booleans(),
        "persist_model": st.sampled_from(["epoch", "strict"]),
    },
)
specs = st.builds(
    proto.JobSpec,
    workload=workloads,
    design=designs,
    transactions=st.integers(1, 10**6),
    seed=st.integers(-(2**31), 2**31),
    experiment_id=st.text(max_size=24),
    overrides=overrides,
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)
messages = st.fixed_dictionaries(
    {"type": st.text(min_size=1, max_size=16)},
    optional={"id": st.text(max_size=16), "body": json_values},
)


# ----------------------------------------------------------------------
# JobSpec / job_key
# ----------------------------------------------------------------------
class TestJobSpecProperties:
    @given(specs)
    def test_valid_specs_validate_and_roundtrip(self, spec):
        assert spec.validate() is spec
        assert proto.JobSpec.from_wire(spec.to_wire()) == spec

    @given(specs)
    def test_wire_form_survives_json(self, spec):
        # The wire dict must be JSON-serialisable and stable through a
        # real encode/decode cycle (what the socket actually carries).
        wired = json.loads(json.dumps(spec.to_wire()))
        assert proto.JobSpec.from_wire(wired) == spec

    @given(specs, st.text(max_size=24))
    def test_job_key_ignores_the_client_label(self, spec, label):
        relabelled = dataclasses.replace(spec, experiment_id=label)
        assert proto.job_key(spec) == proto.job_key(relabelled)

    @given(specs, specs)
    def test_job_key_injective_over_the_canonical_form(self, a, b):
        # Keys collide exactly when the canonical (hash-relevant)
        # forms agree — the dedup guarantee: same key => same
        # simulation, different simulation => different key.
        same_key = proto.job_key(a) == proto.job_key(b)
        same_canonical = proto.canonical_job(a) == proto.canonical_job(b)
        assert same_key == same_canonical

    @given(specs)
    def test_job_key_is_trace_store_shaped(self, spec):
        # Same shape as TraceStore.digest keys: 24 lowercase hex chars
        # of a SHA-256 over canonical sorted-key JSON.
        key = proto.job_key(spec)
        assert len(key) == 24
        assert set(key) <= set("0123456789abcdef")

    @given(specs)
    def test_resolve_config_is_deterministic_and_applies_overrides(
        self, spec
    ):
        config = proto.resolve_config(spec)
        assert config == proto.resolve_config(spec)
        if "transaction_size" in spec.overrides:
            assert (
                config.transaction_size == spec.overrides["transaction_size"]
            )
        if "adr_budget" in spec.overrides:
            assert config.adr.budget_entries == spec.overrides["adr_budget"]
        if "wpq_coalescing" in spec.overrides:
            assert config.wpq_coalescing == spec.overrides["wpq_coalescing"]
        if "persist_model" in spec.overrides:
            assert config.core.persist_model == spec.overrides["persist_model"]


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFramingProperties:
    @given(messages)
    def test_encode_decode_roundtrip(self, message):
        assert proto.decode_message(proto.encode_message(message)) == message

    @given(messages)
    def test_frames_are_single_lines(self, message):
        data = proto.encode_message(message)
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    @given(st.binary(max_size=256))
    def test_decode_never_raises_anything_but_protocol_error(self, blob):
        try:
            decoded = proto.decode_message(blob)
        except proto.ProtocolError:
            return
        assert isinstance(decoded, dict)
        assert "type" in decoded

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8), json_scalars, max_size=6
        )
    )
    def test_result_digest_invariant_under_key_order(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert proto.result_digest(payload) == proto.result_digest(reordered)


# ----------------------------------------------------------------------
# Soak (slow tier): heavier client mix through the real subprocess path
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_service_soak_under_duplicate_heavy_concurrency():
    from repro.service.smoke import run_smoke

    report = run_smoke(
        workload="hashmap", transactions=60, seed=3, clients=8, jobs=2
    )
    assert report["passed"], report["failures"]
    assert report["bit_identical"]
    assert report["server_exit"] == 0
    # 8 clients x 6 configs with only 6 unique jobs: the dedup layer,
    # not the pool, must absorb the duplicate-heavy mix.
    assert report["stats"]["unique_jobs"] == 6
    assert report["stats"]["dedup_hit_rate"] > 0.8
