"""Tests for the set-associative cache model."""

import pytest

from repro.config import CacheConfig
from repro.mem.cache import CacheLineState, SetAssociativeCache


def small_cache(sets=4, ways=2) -> SetAssociativeCache:
    config = CacheConfig("t", sets * ways * 64, ways, 1)
    return SetAssociativeCache(config)


class TestGeometry:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 100, 2, 1)  # not multiple of line
        with pytest.raises(ValueError):
            CacheConfig("bad", 64 * 3, 2, 1)  # lines not divisible by ways

    def test_line_alignment(self):
        cache = small_cache()
        assert cache.line_address(0x1234) == 0x1200


class TestAccess:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000, False)
        cache.insert(0x1000, dirty=False)
        assert cache.access(0x1000, False)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_write_hit_marks_dirty(self):
        cache = small_cache()
        cache.insert(0x1000, dirty=False)
        cache.access(0x1000, is_write=True)
        assert cache.lookup(0x1000) is CacheLineState.DIRTY

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0x0, dirty=False)
        cache.insert(0x40, dirty=False)
        cache.access(0x0, False)  # touch 0x0: now 0x40 is LRU
        victim = cache.insert(0x80, dirty=False)
        assert victim is not None
        assert victim.address == 0x40

    def test_dirty_eviction_reported(self):
        cache = small_cache(sets=1, ways=1)
        cache.insert(0x0, dirty=True)
        victim = cache.insert(0x40, dirty=False)
        assert victim.dirty
        assert cache.dirty_evictions == 1

    def test_reinsert_does_not_downgrade_dirty(self):
        cache = small_cache()
        cache.insert(0x0, dirty=True)
        cache.insert(0x0, dirty=False)
        assert cache.lookup(0x0) is CacheLineState.DIRTY

    def test_same_set_different_tags_coexist(self):
        cache = small_cache(sets=4, ways=2)
        # Addresses 0x0 and 4 sets * 64 = 0x400 map to the same set.
        cache.insert(0x0, dirty=False)
        cache.insert(0x400, dirty=False)
        assert cache.contains(0x0)
        assert cache.contains(0x400)


class TestFlushOps:
    def test_clean_line_keeps_resident(self):
        cache = small_cache()
        cache.insert(0x0, dirty=True)
        assert cache.clean_line(0x0)
        assert cache.lookup(0x0) is CacheLineState.CLEAN

    def test_clean_line_absent(self):
        cache = small_cache()
        assert not cache.clean_line(0x0)

    def test_clean_line_already_clean(self):
        cache = small_cache()
        cache.insert(0x0, dirty=False)
        assert not cache.clean_line(0x0)

    def test_invalidate_returns_dirty_victim(self):
        cache = small_cache()
        cache.insert(0x0, dirty=True)
        victim = cache.invalidate_line(0x0)
        assert victim.dirty
        assert not cache.contains(0x0)

    def test_invalidate_absent(self):
        cache = small_cache()
        assert cache.invalidate_line(0x0) is None


class TestIntrospection:
    def test_resident_lines_roundtrip(self):
        cache = small_cache()
        cache.insert(0x0, dirty=True)
        cache.insert(0x40, dirty=False)
        lines = dict(cache.resident_lines())
        assert lines[0x0] is CacheLineState.DIRTY
        assert lines[0x40] is CacheLineState.CLEAN

    def test_occupancy(self):
        cache = small_cache()
        for i in range(5):
            cache.insert(i * 64, dirty=False)
        assert cache.occupancy == 5

    def test_stats_dict(self):
        cache = small_cache()
        cache.access(0x0, False)
        stats = cache.stats()
        assert stats["misses"] == 1
