"""Tests for the N-ary Merkle tree."""

import pytest

from repro.security.merkle import EMPTY_HASH, MerkleTree

KEY = b"\x01" * 32


@pytest.fixture
def tree():
    return MerkleTree(KEY, num_leaves=4096, arity=8)


class TestStructure:
    def test_height_covers_leaves(self, tree):
        assert tree.arity ** tree.height >= tree.num_leaves

    def test_height_of_small_tree(self):
        assert MerkleTree(KEY, num_leaves=8, arity=8).height == 1
        assert MerkleTree(KEY, num_leaves=9, arity=8).height == 2
        assert MerkleTree(KEY, num_leaves=1).height == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MerkleTree(KEY, 0)
        with pytest.raises(ValueError):
            MerkleTree(KEY, 8, arity=1)

    def test_path_ends_at_root(self, tree):
        path = tree.path_nodes(4095)
        assert path[0] == (0, 4095)
        assert path[-1] == (tree.height, 0)

    def test_empty_tree_root(self, tree):
        assert tree.root == EMPTY_HASH


class TestUpdateVerify:
    def test_update_changes_root(self, tree):
        before = tree.root
        tree.update_leaf(5, b"leaf-five")
        assert tree.root != before

    def test_verify_accepts_current_leaf(self, tree):
        tree.update_leaf(5, b"leaf-five")
        assert tree.verify_leaf(5, b"leaf-five")

    def test_verify_rejects_wrong_content(self, tree):
        tree.update_leaf(5, b"leaf-five")
        assert not tree.verify_leaf(5, b"leaf-5ive")

    def test_verify_rejects_relocated_leaf(self, tree):
        tree.update_leaf(5, b"content")
        tree.update_leaf(9, b"other")
        # Same bytes, different index: leaf hash binds the index.
        assert not tree.verify_leaf(9, b"content")

    def test_update_path_length(self, tree):
        updated = tree.update_leaf(100, b"x")
        assert len(updated) == tree.height + 1

    def test_sibling_update_preserves_other_leaves(self, tree):
        tree.update_leaf(8, b"first")
        tree.update_leaf(9, b"second")  # same parent
        assert tree.verify_leaf(8, b"first")
        assert tree.verify_leaf(9, b"second")

    def test_leaf_out_of_range(self, tree):
        with pytest.raises(IndexError):
            tree.update_leaf(4096, b"x")
        with pytest.raises(IndexError):
            tree.verify_leaf(-1, b"x")

    def test_same_content_same_root(self):
        a = MerkleTree(KEY, 64)
        b = MerkleTree(KEY, 64)
        for i in (1, 5, 33):
            a.update_leaf(i, f"leaf{i}".encode())
            b.update_leaf(i, f"leaf{i}".encode())
        assert a.root == b.root

    def test_update_order_does_not_matter(self):
        a = MerkleTree(KEY, 64)
        b = MerkleTree(KEY, 64)
        a.update_leaf(1, b"one")
        a.update_leaf(2, b"two")
        b.update_leaf(2, b"two")
        b.update_leaf(1, b"one")
        assert a.root == b.root


class TestTampering:
    def test_tampered_internal_node_detected(self, tree):
        tree.update_leaf(5, b"x")
        tree.tamper_node(1, 0, b"\xde\xad\xbe\xef\xde\xad\xbe\xef")
        assert not tree.verify_leaf(5, b"x")

    def test_tampered_leaf_hash_detected(self, tree):
        tree.update_leaf(5, b"x")
        tree.tamper_node(0, 5, b"\x00" * 8)
        assert not tree.verify_leaf(5, b"x")


class TestRecomputeAndRebuild:
    def test_recompute_node_fixes_stale_parent(self, tree):
        tree.update_leaf(5, b"x")
        tree.tamper_node(1, 0, b"\x11" * 8)
        tree.recompute_node(1, 0)
        assert tree.verify_leaf(5, b"x")

    def test_recompute_level_bounds(self, tree):
        with pytest.raises(ValueError):
            tree.recompute_node(0, 0)
        with pytest.raises(ValueError):
            tree.recompute_node(tree.height + 1, 0)

    def test_rebuild_matches_incremental_root(self, tree):
        leaves = {i: f"leaf-{i}".encode() for i in (0, 7, 8, 100, 4095)}
        for index, content in leaves.items():
            tree.update_leaf(index, content)
        incremental_root = tree.root
        fresh = MerkleTree(KEY, 4096, arity=8)
        rebuilt_root = fresh.rebuild_from_leaves(leaves)
        assert rebuilt_root == incremental_root

    def test_rebuild_discards_stale_state(self, tree):
        tree.update_leaf(5, b"old")
        tree.rebuild_from_leaves({6: b"new"})
        assert tree.verify_leaf(6, b"new")
        assert not tree.verify_leaf(5, b"old")

    def test_export_nodes_snapshot(self, tree):
        tree.update_leaf(5, b"x")
        nodes = tree.export_nodes()
        assert (0, 5) in nodes
        assert (tree.height, 0) in nodes
