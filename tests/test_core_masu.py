"""Tests for the Major Security Unit: functional crypto + timing."""

import pytest

from repro.config import SimConfig, TreeUpdateScheme, eager_config, lazy_config
from repro.core.masu import COUNTER_REGION, IntegrityError, MajorSecurityUnit
from repro.core.registers import PersistentRegisters
from repro.crypto.keys import KeyStore
from repro.mem.nvm import NVMDevice


def build(config=None):
    config = config or SimConfig()
    keys = KeyStore(13)
    registers = PersistentRegisters()
    nvm = NVMDevice(config.nvm)
    return MajorSecurityUnit(config, keys, registers, nvm), registers, nvm


class TestWriteReadRoundtrip:
    def test_roundtrip(self, line_factory):
        masu, _, _ = build()
        data = line_factory("hello")
        masu.secure_write(0x1000, data)
        assert masu.secure_read(0x1000) == data

    def test_ciphertext_in_nvm_differs(self, line_factory):
        masu, _, nvm = build()
        data = line_factory("hello")
        masu.secure_write(0x1000, data)
        assert nvm.read_line(0x1000) != data

    def test_rewrite_changes_ciphertext(self, line_factory):
        """Counter-mode freshness: same plaintext twice -> new ciphertext."""
        masu, _, nvm = build()
        data = line_factory("same")
        masu.secure_write(0x1000, data)
        first = nvm.read_line(0x1000)
        masu.secure_write(0x1000, data)
        assert nvm.read_line(0x1000) != first
        assert masu.secure_read(0x1000) == data

    def test_many_lines_roundtrip(self, line_factory):
        masu, _, _ = build()
        payload = {0x1000 + i * 64: line_factory(f"l{i}") for i in range(20)}
        for address, data in payload.items():
            masu.secure_write(address, data)
        for address, data in payload.items():
            assert masu.secure_read(address) == data

    def test_read_missing_line(self):
        masu, _, _ = build()
        with pytest.raises(IntegrityError):
            masu.secure_read(0xDEAD000)


class TestRedoLogProtocol:
    def test_stage_does_not_touch_state(self, line_factory):
        masu, registers, nvm = build()
        masu.stage(0x1000, line_factory("staged"))
        assert nvm.read_line(0x1000) is None
        assert masu.counters.counter_for_address(0x1000).value == 0
        assert registers.redo_log.ready

    def test_apply_commits_staged_write(self, line_factory):
        masu, registers, _ = build()
        data = line_factory("staged")
        masu.stage(0x1000, data)
        masu.apply()
        assert masu.secure_read(0x1000) == data
        assert not registers.redo_log.ready

    def test_double_stage_rejected(self, line_factory):
        masu, _, _ = build()
        masu.stage(0x1000, line_factory("a"))
        with pytest.raises(RuntimeError):
            masu.stage(0x2000, line_factory("b"))

    def test_apply_without_stage_rejected(self):
        masu, _, _ = build()
        with pytest.raises(RuntimeError):
            masu.apply()

    def test_root_register_tracks_tree(self, line_factory):
        masu, registers, _ = build()
        masu.secure_write(0x1000, line_factory("a"))
        assert registers.tree_root == masu.tree.root


class TestTamperDetection:
    def test_data_tamper_detected(self, line_factory):
        masu, _, nvm = build()
        masu.secure_write(0x1000, line_factory("v"))
        nvm.tamper_line(0x1000, b"\xff" * 64)
        with pytest.raises(IntegrityError):
            masu.secure_read(0x1000)

    def test_mac_tamper_detected(self, line_factory):
        masu, _, _ = build()
        masu.secure_write(0x1000, line_factory("v"))
        masu.data_macs.tamper(0x1000, b"\x00" * 8)
        with pytest.raises(IntegrityError):
            masu.secure_read(0x1000)

    def test_tree_tamper_detected(self, line_factory):
        masu, _, _ = build()
        masu.secure_write(0x1000, line_factory("v"))
        page = 0x1000 >> 12
        masu.tree.tamper_node(1, page // 8, b"\x13" * 8)
        with pytest.raises(IntegrityError):
            masu.secure_read(0x1000)


class TestLazyToCMode:
    def test_roundtrip(self, line_factory):
        masu, _, _ = build(lazy_config())
        data = line_factory("lazy")
        masu.secure_write(0x3000, data)
        assert masu.secure_read(0x3000) == data

    def test_toc_version_advances(self, line_factory):
        masu, _, _ = build(lazy_config())
        masu.secure_write(0x3000, line_factory("a"))
        masu.secure_write(0x3000, line_factory("b"))
        assert masu.toc.leaf_version(0x3000 >> 12) == 2

    def test_toc_root_counter_mirrored(self, line_factory):
        masu, registers, _ = build(lazy_config())
        masu.secure_write(0x3000, line_factory("a"))
        assert registers.toc_root_counter == masu.toc.root_counter

    def test_leaf_mac_tamper_detected(self, line_factory):
        from repro.core.masu import TOC_LEAF_REGION

        masu, _, nvm = build(lazy_config())
        masu.secure_write(0x3000, line_factory("a"))
        nvm.region_write(TOC_LEAF_REGION, 0x3000 >> 12, b"\x00" * 8)
        with pytest.raises(IntegrityError):
            masu.secure_read(0x3000)


class TestOsirisStride:
    def test_counter_region_written_on_stride(self, line_factory):
        masu, _, nvm = build()
        page = 0x1000 >> 12
        masu.secure_write(0x1000, line_factory("1"))  # update 1 -> persisted
        first = nvm.region_read(COUNTER_REGION, page)
        masu.secure_write(0x1000, line_factory("2"))  # update 2 -> stale copy
        assert nvm.region_read(COUNTER_REGION, page) == first
        for i in range(3, 6):
            masu.secure_write(0x1000, line_factory(str(i)))  # update 5 persists
        assert nvm.region_read(COUNTER_REGION, page) != first


class TestTimingHelpers:
    def test_counter_hit_is_cheap(self):
        masu, _, _ = build()
        masu.counter_cache.access(0, True)  # warm
        latency = masu.counter_access_latency(0, 0x0, True)
        assert latency == masu.config.security.counter_cache.latency

    def test_counter_miss_costs_nvm_read(self):
        masu, _, _ = build()
        latency = masu.counter_access_latency(0, 0x40000, True)
        assert latency >= masu.config.nvm.read_latency

    def test_eager_write_latency_includes_full_chain(self):
        masu, _, _ = build(eager_config())
        masu.counter_cache.access(0x5000 >> 12, True)
        latency = masu.write_pipeline_latency(0, 0x5000, critical_path=True)
        expected_min = (
            masu.config.security.aes_latency
            + masu.config.security.mac_latency * masu.config.security.eager_mac_count
        )
        assert latency >= expected_min

    def test_lazy_critical_path_shorter_than_backend(self):
        masu, _, _ = build(lazy_config())
        page = 0x5000 >> 12
        masu.counter_cache.access(page, True)
        critical = masu.write_pipeline_latency(0, 0x5000, critical_path=True)
        masu2, _, _ = build(lazy_config())
        masu2.counter_cache.access(page, True)
        backend = masu2.write_pipeline_latency(0, 0x5000, critical_path=False)
        assert critical < backend

    def test_read_verify_latency_includes_mac(self):
        masu, _, _ = build()
        masu.counter_cache.access(0x5000 >> 12, False)
        latency = masu.read_verify_latency(0, 0x5000)
        assert latency >= masu.config.security.mac_latency

    def test_stats_snapshot(self, line_factory):
        masu, _, _ = build()
        masu.secure_write(0x1000, line_factory("x"))
        masu.secure_read(0x1000)
        stats = masu.stats()
        assert stats["writes_processed"] == 1
        assert stats["reads_verified"] == 1
        assert stats["integrity_failures"] == 0


class TestCounterOverflow:
    def test_sibling_lines_survive_minor_overflow(self, line_factory):
        """Overflowing one line's minor counter resets the whole block;
        every other resident line of the page must be re-encrypted or
        its reads would fail (page re-encryption, Section 2.1)."""
        masu, _, _ = build()
        base = 0x1_0000_0000
        victim = base          # written once, then left alone
        churner = base + 64    # driven through a minor-counter overflow
        data = line_factory("victim")
        masu.secure_write(victim, data)
        for i in range(130):
            masu.secure_write(churner, line_factory(f"c{i}"))
        assert masu.page_reencryptions >= 1
        assert masu.secure_read(victim) == data

    def test_overflow_bumps_major_counter(self, line_factory):
        masu, _, _ = build()
        address = 0x2_0000_0000
        for i in range(130):
            masu.secure_write(address, line_factory(f"x{i}"))
        page = address >> 12
        assert masu.counters.block_for_page(page).major >= 1
        assert masu.secure_read(address) == line_factory("x129")

    def test_multiple_resident_lines_all_reencrypted(self, line_factory):
        masu, _, _ = build()
        base = 0x3_0000_0000
        lines = {base + i * 64: line_factory(f"l{i}") for i in range(2, 8)}
        for address, data in lines.items():
            masu.secure_write(address, data)
        for i in range(130):
            masu.secure_write(base, line_factory(f"hot{i}"))
        for address, data in lines.items():
            assert masu.secure_read(address) == data
