"""End-to-end integration tests: paper-shape assertions.

These run small but complete simulations and assert the *relative*
results the paper reports — who wins, orderings, saturation — rather
than absolute cycle counts.
"""

import pytest

from repro.config import ControllerKind, MiSUDesign, SimConfig, eager_config, lazy_config
from repro.harness.runner import run_trace, speedup
from repro.workloads import generate_trace

TXNS = 60


@pytest.fixture(scope="module")
def hashmap_trace():
    return generate_trace("hashmap", TXNS, 1024, seed=3)


def run(config, trace):
    return run_trace(config, trace, "trace", TXNS)


class TestFigure5Ordering:
    """ideal <= postwpq-hypothetical <= dolos <= baseline (in cycles)."""

    def test_controller_ordering(self, hashmap_trace):
        ideal = run(
            eager_config(controller=ControllerKind.NON_SECURE_IDEAL), hashmap_trace
        )
        hypothetical = run(
            eager_config(controller=ControllerKind.POST_WPQ_HYPOTHETICAL),
            hashmap_trace,
        )
        dolos = run(eager_config(), hashmap_trace)
        baseline = run(
            eager_config(controller=ControllerKind.PRE_WPQ_SECURE), hashmap_trace
        )
        assert ideal.cycles <= hypothetical.cycles
        assert hypothetical.cycles <= dolos.cycles
        assert dolos.cycles < baseline.cycles

    def test_dolos_speedup_in_paper_band(self, hashmap_trace):
        baseline = run(
            eager_config(controller=ControllerKind.PRE_WPQ_SECURE), hashmap_trace
        )
        dolos = run(eager_config(), hashmap_trace)
        # Paper: 1.66x average; individual workloads 1.4-2.0.
        assert 1.2 < speedup(baseline, dolos) < 2.5


class TestMiSUDesignOrdering:
    def test_retry_ordering_full_partial_post(self, hashmap_trace):
        """Table 2: smaller queues retry more."""
        retries = {}
        for design in MiSUDesign:
            result = run(eager_config(misu_design=design), hashmap_trace)
            retries[design] = result.retries_per_kwr
        assert retries[MiSUDesign.FULL_WPQ] <= retries[MiSUDesign.PARTIAL_WPQ]
        assert retries[MiSUDesign.PARTIAL_WPQ] <= retries[MiSUDesign.POST_WPQ]

    def test_lazy_speedup_below_eager(self, hashmap_trace):
        """Figure 16 vs Figure 12: lazy backends leave less to gain."""

        def dolos_speedup(factory):
            baseline = run(
                factory(controller=ControllerKind.PRE_WPQ_SECURE), hashmap_trace
            )
            dolos = run(factory(), hashmap_trace)
            return speedup(baseline, dolos)

        assert dolos_speedup(lazy_config) < dolos_speedup(eager_config)


class TestWPQSizeSensitivity:
    def test_bigger_wpq_fewer_retries(self):
        """Figure 15: retries collapse once the queue is ~28 entries."""
        from repro.config import ADRConfig

        trace = generate_trace("hashmap", TXNS, 1024, seed=3)
        small = run_trace(
            eager_config(adr=ADRConfig(budget_entries=16)), trace, "t", TXNS
        )
        large = run_trace(
            eager_config(adr=ADRConfig(budget_entries=64)), trace, "t", TXNS
        )
        assert large.retries_per_kwr < small.retries_per_kwr
        assert large.cycles <= small.cycles


class TestTransactionSizeSensitivity:
    def test_larger_transactions_more_retries(self):
        """Figure 13: larger transactions fill the WPQ."""
        small_trace = generate_trace("hashmap", TXNS, 128, seed=3)
        large_trace = generate_trace("hashmap", TXNS, 2048, seed=3)
        small = run_trace(eager_config(transaction_size=128), small_trace, "t", TXNS)
        large = run_trace(eager_config(transaction_size=2048), large_trace, "t", TXNS)
        assert small.retries_per_kwr < large.retries_per_kwr

    def test_speedup_positive_even_at_2048(self):
        """Figure 14: even 2KB transactions still gain."""
        trace = generate_trace("hashmap", TXNS, 2048, seed=3)
        baseline = run_trace(
            eager_config(
                controller=ControllerKind.PRE_WPQ_SECURE, transaction_size=2048
            ),
            trace, "t", TXNS,
        )
        dolos = run_trace(
            eager_config(transaction_size=2048), trace, "t", TXNS
        )
        assert speedup(baseline, dolos) > 1.0


class TestCoalescingAblation:
    def test_coalescing_never_hurts(self):
        trace = generate_trace("redis", TXNS, 512, seed=3)
        on = run_trace(eager_config(), trace, "t", TXNS)
        off = run_trace(eager_config(wpq_coalescing=False), trace, "t", TXNS)
        assert on.cycles <= off.cycles


class TestCrossWorkloadShape:
    def test_nstore_has_least_retries(self):
        """Table 2's standout row."""
        retries = {}
        for name in ("hashmap", "nstore-ycsb"):
            trace = generate_trace(name, TXNS, 1024, seed=3)
            retries[name] = run_trace(eager_config(), trace, name, TXNS).retries_per_kwr
        assert retries["nstore-ycsb"] < retries["hashmap"]
