"""Tier-1 tests for the chaos harness: plans, proxy, classification,
storage drills, and small end-to-end campaigns under pinned fault
schedules.

The replay tests are the heart of the determinism story: the same
seed must produce the same :class:`ChaosPlan`, the same
:class:`WireSchedule` decisions, and — end to end, over real worker
subprocesses — the same injection log (modulo wall-clock stamps).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.campaign import (
    ChaosCampaignConfig,
    _crash_writer_drill,
    _run_calm_baseline,
    _torn_wal_drill,
    check_invariants,
    classify_faults,
    run_chaos_once,
)
from repro.chaos.plan import (
    PROCESS_KINDS,
    STORAGE_KINDS,
    WIRE_KINDS,
    ChaosFault,
    ChaosPlan,
    Injection,
    InjectionLog,
    WireSchedule,
)
from repro.chaos.proxy import garble
from repro.fleet.db import FleetDB
from repro.fleet.dispatcher import (
    CampaignSpec,
    FleetDispatcher,
    expand_units,
)
from repro.fleet.supervisor import SupervisionConfig


# ======================================================================
# Plans
# ======================================================================
class TestChaosPlan:
    def test_same_seed_same_plan(self):
        assert ChaosPlan.generate(42) == ChaosPlan.generate(42)

    def test_different_seeds_differ(self):
        assert ChaosPlan.generate(1) != ChaosPlan.generate(2)

    def test_json_roundtrip(self):
        plan = ChaosPlan.generate(7, workers=3)
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_layers_and_counts(self):
        plan = ChaosPlan.generate(3, wire_faults=4, process_faults=3,
                                  storage_faults=2)
        assert len(plan.by_layer("wire")) == 4
        assert len(plan.by_layer("process")) == 3
        assert len(plan.by_layer("storage")) == 2
        for fault in plan.by_layer("wire"):
            assert fault.kind in WIRE_KINDS
            assert fault.direction in ("c2s", "s2c")
            assert 1 <= fault.frame <= 4
        for fault in plan.by_layer("process"):
            assert fault.kind in PROCESS_KINDS
        for fault in plan.by_layer("storage"):
            assert fault.kind in STORAGE_KINDS
            assert fault.worker == ""

    def test_storage_faults_capped_at_catalogue(self):
        plan = ChaosPlan.generate(5, storage_faults=99)
        assert len(plan.by_layer("storage")) == len(STORAGE_KINDS)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ChaosPlan.generate(1, workers=0)

    def test_for_worker_filters(self):
        plan = ChaosPlan.generate(11, workers=2)
        for fault in plan.for_worker("worker-0", "wire"):
            assert fault.worker == "worker-0"

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_generate_is_a_pure_function_of_the_seed(self, seed):
        plan = ChaosPlan.generate(seed)
        assert ChaosPlan.generate(seed) == plan
        assert ChaosPlan.from_json(plan.to_json()) == plan


# ======================================================================
# Wire schedules
# ======================================================================
class TestWireSchedule:
    def test_ordinals_count_per_direction(self):
        schedule = WireSchedule(ChaosPlan.generate(1), "worker-0")
        assert [schedule.next_ordinal("c2s") for _ in range(3)] == [1, 2, 3]
        assert schedule.next_ordinal("s2c") == 1  # independent counter

    def test_first_fault_wins_on_ordinal_collision(self):
        first = ChaosFault("wire-0", "conn-reset", worker="worker-0",
                           direction="s2c", frame=2)
        second = ChaosFault("wire-1", "frame-dup", worker="worker-0",
                            direction="s2c", frame=2)
        plan = ChaosPlan(seed=0, workers=1, faults=(first, second))
        schedule = WireSchedule(plan, "worker-0")
        assert schedule.action("s2c", 2) is first
        assert schedule.planned() == [first]

    @given(
        seed=st.integers(0, 5000),
        c2s=st.integers(0, 12),
        s2c=st.integers(0, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_seed_schedules_log_identical_injections(
        self, seed, c2s, s2c
    ):
        """Replay property: identical frame streams, identical logs."""
        plan = ChaosPlan.generate(seed)
        logs = []
        for replica in range(2):
            schedule = WireSchedule(plan, "worker-0")
            log = InjectionLog()
            for direction, frames in (("c2s", c2s), ("s2c", s2c)):
                for _ in range(frames):
                    ordinal = schedule.next_ordinal(direction)
                    fault = schedule.action(direction, ordinal)
                    if fault is not None:
                        log.record(fault, frame=ordinal)
            logs.append(log.deterministic())
        assert logs[0] == logs[1]


# ======================================================================
# Frame garbling
# ======================================================================
class TestGarble:
    def test_deterministic(self):
        line = b'{"type":"result","id":"q1"}\n'
        assert garble(line, 5) == garble(line, 5)

    def test_flips_exactly_one_byte_and_preserves_framing(self):
        line = b'{"type":"result","id":"q1"}\n'
        for ordinal in range(1, 40):
            out = garble(line, ordinal)
            assert out != line
            assert len(out) == len(line)
            assert out.endswith(b"\n")
            assert out.count(b"\n") == 1  # never fabricates a boundary
            assert sum(a != b for a, b in zip(out, line)) == 1

    def test_tiny_lines_pass_through(self):
        assert garble(b"\n", 3) == b"\n"
        assert garble(b"", 3) == b""

    @given(
        body=st.binary(min_size=1, max_size=200).filter(
            lambda b: b"\n" not in b
        ),
        ordinal=st.integers(1, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_introduces_a_newline(self, body, ordinal):
        out = garble(body + b"\n", ordinal)
        assert out.endswith(b"\n")
        assert out.count(b"\n") == 1


# ======================================================================
# Injection log
# ======================================================================
class TestInjectionLog:
    def test_deterministic_view_excludes_stamps(self):
        fault = ChaosFault("wire-0", "stall", worker="worker-1",
                           direction="c2s", frame=3, param=0.1)
        log = InjectionLog()
        log.record(fault, detail="held 0.1s")
        (entry,) = log.entries()
        assert entry.at > 0 and entry.mono > 0
        assert log.deterministic() == [
            ("wire-0", "stall", "wire", "worker-1", "c2s", 3)
        ]
        assert log.fired_ids() == {"wire-0"}

    def test_frame_override_lands_in_the_entry(self):
        fault = ChaosFault("wire-0", "frame-dup", worker="worker-0",
                           direction="s2c", frame=2)
        log = InjectionLog()
        log.record(fault, frame=9)
        assert log.deterministic()[0][-1] == 9


# ======================================================================
# Classification
# ======================================================================
def _inj(fault: ChaosFault, mono: float) -> Injection:
    return Injection(
        fault_id=fault.fault_id,
        kind=fault.kind,
        layer=fault.layer,
        worker=fault.worker,
        direction=fault.direction,
        frame=fault.frame,
        detail="synthetic",
        at=0.0,
        mono=mono,
    )


def _event(kind: str, worker: str, mono: float) -> dict:
    return {"kind": kind, "worker": worker, "detail": "", "at": 0.0,
            "mono": mono}


class TestClassifyFaults:
    WIRE = ChaosFault("wire-0", "conn-reset", worker="worker-0",
                      direction="s2c", frame=2)
    PROC = ChaosFault("proc-0", "sigkill", worker="worker-1", frame=1)
    STORE = ChaosFault("store-0", "db-torn-wal")

    def _plan(self, *faults) -> ChaosPlan:
        return ChaosPlan(seed=0, workers=2, faults=tuple(faults))

    def test_unreached_when_never_fired(self):
        result = classify_faults(self._plan(self.WIRE), [], [], True)
        assert result["wire-0"]["status"] == "unreached"

    def test_silent_when_invariants_broke(self):
        result = classify_faults(
            self._plan(self.WIRE), [_inj(self.WIRE, 10.0)], [], False
        )
        assert result["wire-0"]["status"] == "silent"

    def test_recovered_needs_matching_evidence(self):
        events = [_event("worker-death", "worker-1", 10.2)]
        result = classify_faults(
            self._plan(self.PROC), [_inj(self.PROC, 10.0)], events, True
        )
        assert result["proc-0"]["status"] == "recovered"

    def test_evidence_before_the_injection_does_not_count(self):
        events = [_event("worker-death", "worker-1", 5.0)]
        result = classify_faults(
            self._plan(self.PROC), [_inj(self.PROC, 10.0)], events, True
        )
        assert result["proc-0"]["status"] == "tolerated"

    def test_other_workers_evidence_does_not_count(self):
        events = [_event("worker-death", "worker-0", 10.2)]
        result = classify_faults(
            self._plan(self.PROC), [_inj(self.PROC, 10.0)], events, True
        )
        assert result["proc-0"]["status"] == "tolerated"

    def test_degraded_beats_recovered(self):
        events = [
            _event("worker-death", "worker-1", 10.2),
            _event("breaker-quarantine", "worker-1", 10.5),
        ]
        result = classify_faults(
            self._plan(self.PROC), [_inj(self.PROC, 10.0)], events, True
        )
        assert result["proc-0"]["status"] == "degraded"

    def test_storage_faults_are_never_recovered(self):
        # A worker-death around the drill is a coincidence, not
        # recovery machinery for the storage layer.
        events = [_event("worker-death", "worker-0", 10.2)]
        result = classify_faults(
            self._plan(self.STORE), [_inj(self.STORE, 10.0)], events, True
        )
        assert result["store-0"]["status"] == "tolerated"


# ======================================================================
# Storage drills + invariants
# ======================================================================
class TestStorageDrills:
    def test_killed_writer_leaves_nothing_behind(self, tmp_path):
        db_path = tmp_path / "fleet.sqlite"
        FleetDB(db_path).close()  # create the real schema first
        fault = ChaosFault("store-0", "db-crash-writer")
        log = InjectionLog()
        violations = _crash_writer_drill(db_path, fault, log)
        assert violations == []
        assert log.fired_ids() == {"store-0"}
        db = FleetDB(db_path)
        try:
            assert db.integrity_check() == "ok"
        finally:
            db.close()

    def test_torn_wal_is_shrugged_off(self, tmp_path):
        db_path = tmp_path / "fleet.sqlite"
        FleetDB(db_path).close()
        fault = ChaosFault("store-0", "db-torn-wal")
        log = InjectionLog()
        violations = _torn_wal_drill(db_path, fault, log, seed=1)
        assert violations == []
        assert log.fired_ids() == {"store-0"}
        db = FleetDB(db_path)
        try:
            assert db.integrity_check() == "ok"
            assert db.experiments() == []  # still readable cold
        finally:
            db.close()


class TestCheckInvariants:
    def test_lost_units_are_violations(self, tmp_path):
        db = FleetDB(tmp_path / "fleet.sqlite")
        try:
            db.open_experiment("exp", {"name": "exp"})
            violations = check_invariants(
                db, "exp", {"unit-a", "unit-b"}, {}
            )
        finally:
            db.close()
        assert any("lost" in v for v in violations)

    def test_clean_empty_experiment_passes(self, tmp_path):
        db = FleetDB(tmp_path / "fleet.sqlite")
        try:
            db.open_experiment("exp", {"name": "exp"})
            violations = check_invariants(db, "exp", set(), {})
        finally:
            db.close()
        assert violations == []


# ======================================================================
# End-to-end: real workers under pinned and seeded chaos
# ======================================================================
def _worker_env_patch(monkeypatch, tmp_path):
    """Hermetic chaos runs: private caches, no cross-run memo state."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_RESULT_CACHE", "off")
    monkeypatch.setenv("REPRO_UNIT_MEMO", "off")


def _tiny_chaos_config(**changes) -> ChaosCampaignConfig:
    defaults = dict(
        name="ctest",
        workloads=("hashmap",),
        designs=("dolos-partial", "prewpq-eager"),
        unit_seeds=(1,),
        transactions=6,
        chaos_seeds=(1,),
        workers=1,
        heartbeat=0.1,
        stale_after=0.5,
        respawns=4,
    )
    defaults.update(changes)
    return ChaosCampaignConfig(**defaults)


def _pinned_plan() -> ChaosPlan:
    """Two faults whose triggers a 2-unit single-worker run must reach:
    the second server->client frame always exists (hello + accepted),
    and worker-0 always records at least one unit."""
    return ChaosPlan(
        seed=99,
        workers=1,
        faults=(
            ChaosFault("wire-0", "conn-reset", worker="worker-0",
                       direction="s2c", frame=2),
            ChaosFault("proc-0", "sigkill", worker="worker-0", frame=1),
        ),
    )


class TestChaosEndToEnd:
    def test_pinned_plan_zero_loss_and_replay_identical(
        self, tmp_path, monkeypatch
    ):
        _worker_env_patch(monkeypatch, tmp_path)
        config = _tiny_chaos_config()
        calm_dir = tmp_path / "calm"
        calm_dir.mkdir()
        expected, digests = _run_calm_baseline(config, calm_dir)
        assert len(expected) == 2

        runs = [
            run_chaos_once(
                config,
                tmp_path / f"run{replica}",
                1,
                expected,
                digests,
                plan=_pinned_plan(),
            )
            for replica in range(2)
        ]
        for run in runs:
            assert run["violations"] == []
            assert run["ok"] is True
            assert run["counts"]["silent"] == 0
            assert run["counts"]["unreached"] == 0
            fired = {inj["fault_id"] for inj in run["injections"]}
            assert fired == {"wire-0", "proc-0"}
            # The SIGKILL demands real recovery machinery (death ->
            # requeue -> respawn), which classification must credit.
            assert run["classification"]["proc-0"]["status"] == "recovered"

        def deterministic(run):
            return sorted(
                (
                    inj["fault_id"],
                    inj["kind"],
                    inj["layer"],
                    inj["worker"],
                    inj["direction"],
                    inj["frame"],
                )
                for inj in run["injections"]
            )

        assert deterministic(runs[0]) == deterministic(runs[1])

    def test_seeded_campaign_reports_zero_loss(self, tmp_path, monkeypatch):
        from repro.chaos.campaign import main as chaos_main

        _worker_env_patch(monkeypatch, tmp_path)
        out = tmp_path / "out"
        code = chaos_main(
            [
                "--chaos-seeds", "1",
                "--seeds", "1",
                "--transactions", "6",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert (out / "chaos-report.json").exists()


# ======================================================================
# Supervision: hang detection over real SIGSTOPped workers
# ======================================================================
class TestHeartbeatSupervision:
    def test_sigstopped_worker_is_detected_killed_and_replaced(
        self, tmp_path, monkeypatch
    ):
        _worker_env_patch(monkeypatch, tmp_path)
        campaign = CampaignSpec(
            name="hang",
            workloads=("hashmap",),
            designs=("dolos-partial", "prewpq-eager"),
            seeds=(1, 2),
            transactions=6,
        ).validate()
        expected = {unit.key for unit in expand_units(campaign)}
        db = FleetDB(tmp_path / "fleet.sqlite")
        holder = {}
        stopped = []
        lock = threading.Lock()

        def stop_once(worker_id: str, unit_key: str) -> None:
            # SIGSTOP the first worker to record a unit: from outside
            # it is indistinguishable from a deadlock, and only the
            # heartbeat monitor can unblock the campaign.
            with lock:
                if stopped:
                    return
                handle = holder["dispatcher"].worker_handles.get(worker_id)
                if handle is None or not handle.alive:
                    return
                stopped.append(worker_id)
                os.kill(handle.process.pid, signal.SIGSTOP)

        dispatcher = FleetDispatcher(
            campaign,
            db,
            workers=2,
            runtime_dir=tmp_path / "rt",
            worker_env=dict(os.environ),
            on_record=stop_once,
            supervision=SupervisionConfig(
                heartbeat_interval=0.1,
                stale_after=0.4,
                respawn_budget=2,
                probe_timeout=0.2,
            ),
        )
        holder["dispatcher"] = dispatcher
        try:
            summary = dispatcher.run()
            rows = db.unit_rows("hang")
        finally:
            db.close()

        assert stopped, "no worker ever recorded a unit"
        assert summary.hangs >= 1
        assert dispatcher.supervision_log.events("hang-detected")
        assert summary.respawns >= 1
        # Zero loss despite the hang: every unit exactly once.
        assert sorted(row.unit_key for row in rows) == sorted(expected)
