"""Tests for result export (CSV/JSON) and the CLI."""

import json

import pytest

from repro.harness.__main__ import main as cli_main
from repro.harness.experiments import ExperimentResult, sec55_recovery
from repro.harness.export import load_json, to_csv, to_json, write_result


@pytest.fixture
def result():
    return ExperimentResult(
        experiment="demo",
        title="Demo",
        headers=["workload", "speedup"],
        rows=[["hashmap", 1.66], ["redis", 1.8]],
        summary={"mean": 1.73},
        notes="note",
    )


class TestCsv:
    def test_header_and_rows(self, result):
        lines = to_csv(result).strip().splitlines()
        assert lines[0] == "workload,speedup"
        assert lines[1] == "hashmap,1.66"
        assert len(lines) == 3

    def test_real_experiment(self):
        text = to_csv(sec55_recovery())
        assert "44480" in text


class TestJson:
    def test_roundtrip_fields(self, result):
        data = json.loads(to_json(result))
        assert data["experiment"] == "demo"
        assert data["rows"][0] == ["hashmap", 1.66]
        assert data["summary"]["mean"] == 1.73
        assert data["notes"] == "note"


class TestWriteResult:
    def test_writes_both_formats(self, result, tmp_path):
        paths = write_result(result, tmp_path)
        names = {p.name for p in paths}
        assert names == {"demo.csv", "demo.json"}
        assert load_json(tmp_path / "demo.json")["title"] == "Demo"

    def test_csv_only(self, result, tmp_path):
        paths = write_result(result, tmp_path, formats=("csv",))
        assert [p.suffix for p in paths] == [".csv"]

    def test_creates_directory(self, result, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_result(result, target)
        assert (target / "demo.json").exists()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "tab03" in out

    def test_static_experiment(self, capsys):
        assert cli_main(["sec55"]) == 0
        assert "44480" in capsys.readouterr().out

    def test_export_flag(self, tmp_path, capsys):
        assert cli_main(["tab03", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "tab03.csv").exists()
        assert (tmp_path / "tab03.json").exists()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            cli_main(["fig99"])
