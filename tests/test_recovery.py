"""Tests for crash injection and boot-time recovery."""

import pytest

from repro.config import MiSUDesign, SimConfig, lazy_config
from repro.core.controller import DolosController
from repro.core.masu import MajorSecurityUnit
from repro.core.requests import WriteKind, WriteRequest
from repro.engine import Simulator
from repro.recovery.crash import crash_system
from repro.recovery.estimate import estimate_recovery
from repro.recovery.recover import (
    RecoveryError,
    RecoveryMode,
    recover_system,
)

HEAP = 0x1_0000_0000


def run_writes(config, writes, until=None, line_factory=None):
    """Build a Dolos controller, submit ``writes`` persists, run."""
    sim = Simulator()
    controller = DolosController(sim, config)
    controller.start()
    oracle = {}
    for i, address in enumerate(writes):
        data = line_factory(f"w{i}-{address:#x}")
        oracle[address] = data
        controller.submit_write(WriteRequest(address, WriteKind.PERSIST, data=data))
    sim.run(until=until)
    return sim, controller, oracle


@pytest.mark.parametrize(
    "design",
    [MiSUDesign.FULL_WPQ, MiSUDesign.PARTIAL_WPQ, MiSUDesign.POST_WPQ],
)
class TestCrashRecoveryAllDesigns:
    def test_mid_flight_crash_recovers_all_persisted(self, design, line_factory):
        config = SimConfig().with_(misu_design=design)
        writes = [HEAP + i * 64 for i in range(30)]
        sim, controller, oracle = run_writes(
            config, writes, until=5000, line_factory=line_factory
        )
        persisted = controller.stats.get("persist.completed")
        image = crash_system(controller, oracle)
        report = recover_system(image)
        readable = 0
        for address, data in oracle.items():
            try:
                if report.masu.secure_read(address) == data:
                    readable += 1
            except Exception:
                pass
        assert readable == persisted
        assert report.tree_root_verified

    def test_quiescent_crash_recovers_everything(self, design, line_factory):
        config = SimConfig().with_(misu_design=design)
        writes = [HEAP + i * 64 for i in range(12)]
        sim, controller, oracle = run_writes(
            config, writes, line_factory=line_factory
        )
        image = crash_system(controller, oracle)
        report = recover_system(image)
        for address, data in oracle.items():
            assert report.masu.secure_read(address) == data
        # Everything was Ma-SU-processed: nothing to replay.
        assert report.wpq_entries_recovered == 0

    def test_boot_epoch_advances(self, design, line_factory):
        config = SimConfig().with_(misu_design=design)
        sim, controller, oracle = run_writes(
            config, [HEAP], until=2000, line_factory=line_factory
        )
        image = crash_system(controller, oracle)
        report = recover_system(image)
        assert report.new_boot_epoch == 1
        assert image.registers.wpq_pad_counter >= config.wpq_entries


class TestRecoveryDetails:
    def test_pad_counter_never_reuses_counters(self, line_factory):
        """Two crash/recover cycles must advance the pad register twice."""
        config = SimConfig()
        sim, controller, oracle = run_writes(
            config, [HEAP], until=2000, line_factory=line_factory
        )
        image = crash_system(controller, oracle)
        recover_system(image)
        first = image.registers.wpq_pad_counter
        # Second life: new controller sharing registers/keys/nvm.
        sim2 = Simulator()
        controller2 = DolosController(
            sim2, config, nvm=image.nvm, keys=image.keys
        )
        controller2.registers = image.registers
        controller2.misu.registers = image.registers
        controller2.misu.regenerate_pads()
        controller2.start()
        controller2.submit_write(
            WriteRequest(HEAP + 64, WriteKind.PERSIST, data=line_factory("2"))
        )
        sim2.run(until=500)
        image2 = crash_system(controller2, {})
        recover_system(image2)
        assert image2.registers.wpq_pad_counter > first

    def test_cleared_entries_skipped(self, line_factory):
        config = SimConfig()
        writes = [HEAP + i * 64 for i in range(6)]
        sim, controller, oracle = run_writes(
            config, writes, until=30000, line_factory=line_factory
        )
        image = crash_system(controller, oracle)
        report = recover_system(image)
        assert report.wpq_entries_skipped_cleared >= 1

    def test_osiris_only_mode_recovers(self, line_factory):
        config = SimConfig()
        # Repeated writes to the same lines leave NVM counters stale.
        writes = [HEAP + (i % 4) * 64 for i in range(20)]
        sim, controller, oracle = run_writes(
            config, writes, line_factory=line_factory
        )
        image = crash_system(controller, oracle)
        report = recover_system(image, RecoveryMode.OSIRIS_ONLY)
        for address in set(writes):
            assert report.masu.secure_read(address) == oracle[address]

    def test_lazy_mode_recovery(self, line_factory):
        config = lazy_config()
        writes = [HEAP + i * 64 for i in range(10)]
        sim, controller, oracle = run_writes(
            config, writes, until=4000, line_factory=line_factory
        )
        image = crash_system(controller, oracle)
        report = recover_system(image)
        persisted = controller.stats.get("persist.completed")
        readable = 0
        for address, data in oracle.items():
            try:
                if report.masu.secure_read(address) == data:
                    readable += 1
            except Exception:
                pass
        assert readable == persisted

    def test_redo_log_replay(self, line_factory):
        """Crash between Figure 11 steps 2 and 3: the staged write must
        be recovered from the persistent redo registers."""
        from repro.core.registers import PersistentRegisters
        from repro.crypto.keys import KeyStore
        from repro.mem.nvm import NVMDevice
        from repro.recovery.crash import CrashImage

        config = SimConfig()
        keys = KeyStore(config.seed)
        registers = PersistentRegisters()
        nvm = NVMDevice(config.nvm)
        masu = MajorSecurityUnit(config, keys, registers, nvm)
        data = line_factory("staged")
        masu.stage(HEAP, data)  # crash hits here: ready bit set, not applied
        image = CrashImage(config, nvm, registers, keys)
        report = recover_system(image)
        assert report.redo_log_replayed
        assert report.masu.secure_read(HEAP) == data


@pytest.mark.parametrize(
    "design",
    [MiSUDesign.FULL_WPQ, MiSUDesign.PARTIAL_WPQ, MiSUDesign.POST_WPQ],
)
class TestOsirisEdgeCases:
    def test_crash_between_counter_writeback_and_data_write(
        self, design, line_factory
    ):
        """Crash at the exact instant after the counter cache wrote its
        (possibly stale) block to NVM but before the data write landed.

        Repeated same-line writes leave the NVM counter copy up to one
        Osiris stride behind the architectural counter; the crash then
        hits between Figure 11 steps 2 and 3 (redo log ready, data not
        written).  OSIRIS_ONLY recovery must probe the stale counter
        forward AND replay the staged write from the redo registers.
        """
        config = SimConfig().with_(misu_design=design)
        # 20 writes over 4 lines: every line's architectural counter is
        # ahead of (or equal to) the NVM copy, stride permitting.
        writes = [HEAP + (i % 4) * 64 for i in range(20)]
        sim, controller, oracle = run_writes(
            config, writes, line_factory=line_factory
        )
        staged = line_factory("staged-under-stale-counters")
        controller.masu.stage(HEAP, staged)  # crash before apply()
        oracle[HEAP] = staged
        image = crash_system(controller, oracle)
        report = recover_system(image, RecoveryMode.OSIRIS_ONLY)
        assert report.redo_log_replayed
        for address in set(writes):
            assert report.masu.secure_read(address) == oracle[address]

    def test_crash_during_adr_drain_with_full_wpq(self, design, line_factory):
        """Power-fail at maximum occupancy: the ADR energy budget must
        cover draining every usable entry of the design's WPQ (16/13/10
        for Full/Partial/Post), and recovery must replay them all."""
        from repro.core.requests import WriteKind, WriteRequest

        config = SimConfig().with_(misu_design=design)
        sim = Simulator()
        controller = DolosController(sim, config)
        controller.start()
        capacity = controller.wpq.capacity
        assert capacity == config.adr.usable_entries(design)
        oracle = {}
        persisted = set()
        for i in range(capacity * 3):
            address = HEAP + i * 64
            data = line_factory(f"full-{design.value}-{i}")
            oracle[address] = data
            done = controller.submit_write(
                WriteRequest(address, WriteKind.PERSIST, data=data)
            )
            done.subscribe(lambda _v, a=address: persisted.add(a))
        # Advance in small steps until the queue is full of *protected*
        # entries (allocation precedes Mi-SU protection by the MAC
        # latency, and the Ma-SU drains while we fill, so a fixed cycle
        # count is racy).
        def drainable() -> int:
            return sum(1 for _ in controller.wpq.drainable_entries())

        while sim.now < 200_000 and not (
            controller.wpq.occupancy >= capacity and drainable() >= capacity - 1
        ):
            sim.run(until=sim.now + 25)
        assert controller.wpq.occupancy == capacity
        image = crash_system(controller, oracle)
        # The drain image covers the whole queue and stayed within the
        # ADR energy budget (drain() itself enforces the budget).
        assert len(image.drained) >= capacity - 1
        report = recover_system(image)
        assert report.tree_root_verified
        for address in persisted:
            assert report.masu.secure_read(address) == oracle[address]


class TestRecoveryEstimate:
    def test_paper_full_wpq_number(self):
        estimate = estimate_recovery(SimConfig().with_(misu_design=MiSUDesign.FULL_WPQ))
        assert estimate.total_cycles == 44480  # §5.5's exact figure

    def test_read_blocks_include_macs_for_partial(self):
        estimate = estimate_recovery(SimConfig())
        assert estimate.read_cycles == 600 * (13 + 2)  # §5.5: "15*600"

    def test_post_reads_twelve_blocks(self):
        estimate = estimate_recovery(
            SimConfig().with_(misu_design=MiSUDesign.POST_WPQ)
        )
        assert estimate.read_cycles == 600 * 12

    def test_total_is_sum_of_parts(self):
        estimate = estimate_recovery(SimConfig())
        assert estimate.total_cycles == (
            estimate.read_cycles
            + estimate.old_pad_cycles
            + estimate.drain_cycles
            + estimate.new_pad_cycles
        )

    def test_milliseconds_scale(self):
        estimate = estimate_recovery(SimConfig())
        assert estimate.total_ms(4.0) == pytest.approx(
            estimate.total_cycles / 4e9 * 1e3
        )
