"""Tests for the WHISPER-style workload generators."""

import pytest

from repro.cpu.trace import OP_CLWB, OP_FENCE, summarize
from repro.workloads import (
    ALL_WORKLOADS,
    EXTRA_WORKLOADS,
    WHISPER_WORKLOADS,
    generate_trace,
    get_workload,
)
from repro.workloads.synthetic import ReadHeavyWorkload, SyntheticWorkload

SMALL = 30  # transactions per test run (keep the suite fast)


class TestRegistry:
    def test_whisper_set_matches_paper(self):
        assert list(WHISPER_WORKLOADS) == [
            "hashmap", "ctree", "btree", "rbtree", "nstore-ycsb", "redis",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_get_returns_fresh_instances(self):
        assert get_workload("hashmap") is not get_workload("hashmap")


@pytest.mark.parametrize("name", list(WHISPER_WORKLOADS) + list(EXTRA_WORKLOADS))
class TestEveryWorkload:
    def test_generates_nonempty_trace(self, name):
        trace = generate_trace(name, SMALL, 1024, seed=1)
        assert len(trace) > 0

    def test_transaction_markers_match(self, name):
        summary = summarize(generate_trace(name, SMALL, 1024, seed=1))
        assert summary.transactions == SMALL

    def test_has_persist_operations(self, name):
        summary = summarize(generate_trace(name, SMALL, 1024, seed=1))
        assert summary.clwbs > 0
        assert summary.fences > 0

    def test_deterministic_per_seed(self, name):
        a = generate_trace(name, SMALL, 1024, seed=5)
        b = generate_trace(name, SMALL, 1024, seed=5)
        assert a == b

    def test_seed_changes_trace(self, name):
        a = generate_trace(name, SMALL, 1024, seed=1)
        b = generate_trace(name, SMALL, 1024, seed=2)
        assert a != b

    def test_payload_scales_flushes(self, name):
        small = summarize(generate_trace(name, SMALL, 128, seed=1))
        large = summarize(generate_trace(name, SMALL, 2048, seed=1))
        assert large.clwbs > small.clwbs

    def test_addresses_are_line_aligned(self, name):
        for op in generate_trace(name, SMALL, 256, seed=1):
            if op[0] == OP_CLWB:
                assert op[1] % 64 == 0


class TestValidation:
    def test_transactions_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_trace("hashmap", 0)

    def test_payload_minimum(self):
        with pytest.raises(ValueError):
            generate_trace("hashmap", 1, payload_bytes=4)


class TestWorkloadShapes:
    def test_nstore_spreads_persists(self):
        """NStore-YCSB's per-fence bursts must be far smaller than the
        tree workloads' (the Table 2 signature)."""

        def max_burst(name):
            burst = longest = 0
            for op in generate_trace(name, SMALL, 1024, seed=1):
                if op[0] == OP_CLWB:
                    burst += 1
                elif op[0] == OP_FENCE:
                    longest = max(longest, burst)
                    burst = 0
            return longest

        assert max_burst("nstore-ycsb") < max_burst("hashmap")

    def test_redis_is_append_heavy(self):
        summary = summarize(generate_trace("redis", SMALL, 1024, seed=1))
        # AOF appends + value writes: many stores per transaction.
        assert summary.stores / summary.transactions > 10


class TestSyntheticWorkloads:
    def test_exact_flush_count(self):
        workload = SyntheticWorkload(lines_per_tx=4, fences_per_tx=2)
        trace = workload.generate(10, 64, seed=0)
        summary = summarize(trace)
        assert summary.clwbs == 40
        assert summary.fences == 20

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(lines_per_tx=0)
        with pytest.raises(ValueError):
            SyntheticWorkload(fences_per_tx=0)

    def test_read_heavy_mostly_loads(self):
        workload = ReadHeavyWorkload(loads_per_tx=32)
        summary = summarize(workload.generate(10, 64, seed=0))
        assert summary.loads >= 10 * 32
        assert summary.clwbs == 10

    def test_registry_includes_synthetics(self):
        assert "synthetic" in ALL_WORKLOADS
        assert "read-heavy" in ALL_WORKLOADS

    def test_registry_includes_extras(self):
        assert set(EXTRA_WORKLOADS) == {"memcached", "echo"}
        for name in EXTRA_WORKLOADS:
            assert name in ALL_WORKLOADS


class TestMemcachedSemantics:
    def test_eviction_bounds_population(self):
        from repro.workloads.memcached import SLAB_ITEMS, MemcachedWorkload

        workload = MemcachedWorkload()
        workload.generate(400, 256, seed=2)
        assert workload.item_count <= SLAB_ITEMS

    def test_lru_head_is_most_recent(self):
        from repro.workloads.memcached import MemcachedWorkload

        workload = MemcachedWorkload()
        workload.generate(100, 128, seed=2)
        # Walk the LRU list: consistent forward/backward links.
        node = workload.lru_head
        seen = 0
        prev = None
        while node is not None:
            assert node.lru_prev is prev
            prev, node = node, node.lru_next
            seen += 1
        assert seen == workload.item_count


class TestEchoSemantics:
    def test_version_chains_are_ordered(self):
        from repro.workloads.echo import EchoWorkload

        workload = EchoWorkload()
        workload.generate(200, 512, seed=2)
        for key, version in workload.latest.items():
            while version.prev is not None:
                assert version.timestamp > version.prev.timestamp
                version = version.prev

    def test_timestamp_monotonic(self):
        from repro.workloads.echo import EchoWorkload

        workload = EchoWorkload()
        workload.generate(50, 512, seed=2)
        assert workload.timestamp > 0


class TestWarmupStreamIsolation:
    """Warm-up and traced phases draw from independent RNG streams.

    A shared stream would make every traced key a function of how many
    draws warm-up consumed — tweaking ``warmup_transactions`` (or a
    structure's warm-up internals) would silently shift all measured
    traffic.  The split streams pin the traced draw sequence to
    ``(name, seed)`` alone.
    """

    def test_traced_draws_survive_warmup_length_change(self):
        import random

        def traced_stream(warmup):
            streams = []

            class SplittingRandom(random.Random):
                def __init__(self, seed):
                    super().__init__(seed)
                    self.log = []
                    streams.append(self)

                def random(self):
                    value = super().random()
                    self.log.append(value)
                    return value

            workload = get_workload("hashmap")
            workload.warmup_transactions = warmup
            workload.rng_factory = SplittingRandom
            workload.generate(10, 256, seed=5)
            # generate() constructs exactly two RNGs: warm-up, traced.
            assert len(streams) == 2
            return streams[1].log

        assert traced_stream(10) == traced_stream(200)

    def test_warmup_and_traced_streams_differ(self):
        import random

        seeds = []

        class SeedSpy(random.Random):
            def __init__(self, seed):
                super().__init__(seed)
                seeds.append(seed)

        workload = get_workload("hashmap")
        workload.rng_factory = SeedSpy
        workload.generate(5, 256, seed=5)
        assert len(seeds) == 2 and seeds[0] != seeds[1]

    def test_trace_is_seed_sensitive_and_repeatable(self):
        def trace_with(seed):
            return get_workload("hashmap").generate(10, 256, seed=seed)

        assert trace_with(7) == trace_with(7)
        assert trace_with(7) != trace_with(8)
