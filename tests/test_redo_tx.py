"""Tests for redo-log transactions and the logging-style workload."""

import pytest

from repro.cpu.trace import OP_FENCE, summarize
from repro.persistence.heap import PersistentHeap
from repro.persistence.recorder import TraceRecorder
from repro.persistence.redo_tx import RedoTransaction
from repro.persistence.tx import UndoLog
from repro.workloads.synthetic import LoggedUpdateWorkload


def make_tx():
    heap = PersistentHeap()
    rec = TraceRecorder()
    log = UndoLog(heap)
    commit = heap.alloc_aligned(64, 64)
    return RedoTransaction(rec, log, commit), rec, heap


class TestRedoTransaction:
    def test_two_plus_one_ordering_points(self):
        """Log persist + commit persist + apply persist = 3 fences,
        independent of the write-set size."""
        tx, rec, heap = make_tx()
        targets = [heap.alloc(64) for _ in range(10)]
        with tx:
            for target in targets:
                tx.store(target, 64)
        summary = summarize(list(rec.ops))
        assert summary.fences == 3

    def test_undo_fences_scale_with_writes(self):
        """Contrast: undo logging fences once per snapshot."""
        from repro.persistence.tx import Transaction

        heap = PersistentHeap()
        rec = TraceRecorder()
        log = UndoLog(heap)
        commit = heap.alloc_aligned(64, 64)
        tx = Transaction(rec, log, commit)
        targets = [heap.alloc(64) for _ in range(10)]
        with tx:
            for target in targets:
                tx.snapshot(target, 64)
                tx.store(target, 64)
        summary = summarize(list(rec.ops))
        assert summary.fences >= 10

    def test_abort_applies_nothing(self):
        tx, rec, heap = make_tx()
        target = heap.alloc(64)
        with pytest.raises(RuntimeError):
            with tx:
                tx.store(target, 64)
                raise RuntimeError("boom")
        # No flush of the target address: nothing was applied.
        from repro.cpu.trace import OP_CLWB

        flushed = {op[1] for op in rec.ops if op[0] == OP_CLWB}
        assert (target & ~0x3F) not in flushed

    def test_buffered_writes_counter(self):
        tx, _, heap = make_tx()
        with tx:
            tx.store(heap.alloc(8), 8)
            tx.store(heap.alloc(8), 8)
            assert tx.buffered_writes == 2

    def test_nested_begin_rejected(self):
        tx, _, _ = make_tx()
        tx.begin()
        with pytest.raises(RuntimeError):
            tx.begin()

    def test_ops_require_active(self):
        tx, _, heap = make_tx()
        with pytest.raises(RuntimeError):
            tx.store(heap.alloc(8), 8)


class TestLoggedUpdateWorkload:
    def test_style_validation(self):
        with pytest.raises(ValueError):
            LoggedUpdateWorkload(tx_style="wal")

    def test_redo_fewer_fences_than_undo(self):
        undo = LoggedUpdateWorkload(tx_style="undo").generate(20, 512, seed=1)
        redo = LoggedUpdateWorkload(tx_style="redo").generate(20, 512, seed=1)
        assert summarize(redo).fences < summarize(undo).fences

    def test_both_styles_simulate(self):
        from repro.config import SimConfig
        from repro.harness.runner import run_trace

        for style in ("undo", "redo"):
            trace = LoggedUpdateWorkload(tx_style=style).generate(15, 512, seed=1)
            result = run_trace(SimConfig(), trace, style, 15)
            assert result.cycles > 0

    def test_registered(self):
        from repro.workloads import ALL_WORKLOADS

        assert "logged-update" in ALL_WORKLOADS
