"""The fleet experiment database: round-trips, upserts, quarantine.

The db is the fleet's ground truth — re-dispatch, work stealing and
straggler clones all funnel through :meth:`FleetDB.record_unit`, so the
idempotent-upsert contract (first record wins, identical re-records
count as duplicates, *divergent* re-records raise) is what makes
"every unit exactly once" checkable at all.  Corruption handling
mirrors the TraceStore: a row whose payload no longer matches its
digest is quarantined and reported missing, never silently trusted.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.fleet.db import (
    ENV_DB,
    FleetDB,
    FleetDBError,
    UnitDigestMismatch,
    default_db_path,
    payload_digest,
)
from repro.workloads import GENERATOR_VERSION


def _spec(seed: int = 1, mode: str = "run") -> dict:
    return {
        "workload": "hashmap",
        "design": "dolos-partial",
        "transactions": 60,
        "seed": seed,
        "mode": mode,
    }


def _payload(seed: int = 1) -> dict:
    return {
        "workload": "hashmap",
        "cycles": 1000 + seed,
        "instructions": 400 + seed,
        "stats": {"wpq_flushes": seed},
    }


@pytest.fixture
def db(tmp_path):
    return FleetDB(tmp_path / "fleet.sqlite")


class TestSchemaRoundTrip:
    def test_experiment_round_trip(self, db):
        campaign = {"name": "exp", "workloads": ["hashmap"], "seeds": [1]}
        db.open_experiment("exp", campaign, git_hash="abc123")
        record = db.experiment("exp")
        assert record["campaign"] == campaign
        assert record["git_hash"] == "abc123"
        assert record["generator_version"] == GENERATOR_VERSION
        assert record["status"] == "running"
        db.finish_experiment("exp")
        assert db.experiment("exp")["status"] == "done"

    def test_unit_round_trip_preserves_everything(self, db):
        db.open_experiment("exp", {})
        status = db.record_unit(
            "exp", "k1", _spec(), _payload(), worker_id="w0",
            attempts=2, elapsed_s=1.5,
        )
        assert status == "inserted"
        row = db.load_unit("exp", "k1")
        assert row.spec == _spec()
        assert row.payload == _payload()
        assert row.payload_digest == payload_digest(_payload())
        assert (row.workload, row.design, row.seed) == (
            "hashmap", "dolos-partial", 1,
        )
        assert (row.mode, row.worker_id, row.attempts) == ("run", "w0", 2)
        assert row.elapsed_s == 1.5
        assert row.duplicates == 0

    def test_unknown_experiment_raises(self, db):
        with pytest.raises(FleetDBError, match="unknown experiment"):
            db.experiment("nope")

    def test_missing_unit_is_none(self, db):
        db.open_experiment("exp", {})
        assert db.load_unit("exp", "missing") is None

    def test_unit_rows_sorted_by_key(self, db):
        db.open_experiment("exp", {})
        for key in ("zz", "aa", "mm"):
            db.record_unit("exp", key, _spec(), _payload())
        assert [r.unit_key for r in db.unit_rows("exp")] == ["aa", "mm", "zz"]
        assert db.unit_keys("exp") == ["aa", "mm", "zz"]


class TestIdempotentUpsert:
    def test_identical_rerecord_is_counted_not_duplicated(self, db):
        db.open_experiment("exp", {})
        assert db.record_unit("exp", "k1", _spec(), _payload()) == "inserted"
        # Re-dispatch / straggler clone landing the same bytes again.
        assert db.record_unit("exp", "k1", _spec(), _payload()) == "duplicate"
        assert db.record_unit("exp", "k1", _spec(), _payload()) == "duplicate"
        rows = db.unit_rows("exp")
        assert len(rows) == 1
        assert rows[0].duplicates == 2

    def test_divergent_rerecord_raises(self, db):
        db.open_experiment("exp", {})
        db.record_unit("exp", "k1", _spec(), _payload(seed=1))
        with pytest.raises(UnitDigestMismatch, match="non-deterministic"):
            db.record_unit("exp", "k1", _spec(), _payload(seed=99))
        # The original record survives untouched.
        assert db.load_unit("exp", "k1").payload == _payload(seed=1)

    def test_open_experiment_is_idempotent(self, db):
        db.open_experiment("exp", {"name": "first"}, git_hash="aaa")
        db.open_experiment("exp", {"name": "second"}, git_hash="bbb")
        assert db.experiment("exp")["campaign"] == {"name": "first"}


class TestConcurrentWriters:
    def test_two_threads_recording_interleaved_keys(self, tmp_path):
        """WAL + BEGIN IMMEDIATE: racing writers never corrupt or lose.

        Both threads record the full key set, so every key sees one
        insert and one duplicate, in some order — never a constraint
        error, never a double insert.
        """
        path = tmp_path / "fleet.sqlite"
        FleetDB(path).open_experiment("exp", {})
        keys = [f"k{i:03d}" for i in range(40)]
        outcomes = {"inserted": 0, "duplicate": 0}
        lock = threading.Lock()
        errors = []

        def writer(worker_id):
            thread_db = FleetDB(path)
            try:
                for key in keys:
                    status = thread_db.record_unit(
                        "exp", key, _spec(), _payload(), worker_id=worker_id
                    )
                    with lock:
                        outcomes[status] += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                thread_db.close()

        threads = [
            threading.Thread(target=writer, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert outcomes == {"inserted": len(keys), "duplicate": len(keys)}
        verify = FleetDB(path)
        rows = verify.unit_rows("exp")
        assert [r.unit_key for r in rows] == keys
        assert sum(r.duplicates for r in rows) == len(keys)


class TestQuarantine:
    def _corrupt(self, path, key):
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE units SET payload=? WHERE unit_key=?",
            (json.dumps({"cycles": -1, "tampered": True}), key),
        )
        conn.commit()
        conn.close()

    def test_corrupted_row_quarantined_and_reported_missing(self, tmp_path):
        path = tmp_path / "fleet.sqlite"
        db = FleetDB(path)
        db.open_experiment("exp", {})
        db.record_unit("exp", "k1", _spec(), _payload())
        db.close()
        self._corrupt(path, "k1")

        db = FleetDB(path)
        assert db.load_unit("exp", "k1") is None
        assert db.quarantined == 1
        assert db.status("exp")["quarantined"] == 1
        # The dispatcher's contract: quarantined == missing == re-run,
        # and the fresh record lands cleanly.
        assert db.record_unit("exp", "k1", _spec(), _payload()) == "inserted"
        assert db.load_unit("exp", "k1").payload == _payload()

    def test_corrupt_row_dropped_from_bulk_reads(self, tmp_path):
        path = tmp_path / "fleet.sqlite"
        db = FleetDB(path)
        db.open_experiment("exp", {})
        db.record_unit("exp", "k1", _spec(1), _payload(1))
        db.record_unit("exp", "k2", _spec(2), _payload(2))
        db.close()
        self._corrupt(path, "k1")
        db = FleetDB(path)
        assert [r.unit_key for r in db.unit_rows("exp")] == ["k2"]


class TestStatusAndEnv:
    def test_status_rollup(self, db):
        db.open_experiment("exp", {})
        db.record_unit("exp", "k1", _spec(1), _payload(1), worker_id="w0")
        db.record_unit(
            "exp", "k2", _spec(2, mode="faults"), _payload(2), worker_id="w1"
        )
        db.record_unit("exp", "k2", _spec(2, mode="faults"), _payload(2))
        status = db.status("exp")
        assert status["units"] == 2
        assert status["duplicates"] == 1
        assert status["by_mode"] == {"faults": 1, "run": 1}
        # The duplicate re-record bumps a counter, never adds a row, so
        # its (empty) worker id is absent from the distinct-worker list.
        assert status["workers"] == ["w0", "w1"]

    def test_env_knob_names_the_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DB, str(tmp_path / "custom.sqlite"))
        assert default_db_path() == tmp_path / "custom.sqlite"
        db = FleetDB()
        db.open_experiment("exp", {})
        assert (tmp_path / "custom.sqlite").exists()

    def test_readonly_refuses_missing_file(self, tmp_path):
        with pytest.raises(FleetDBError, match="no fleet database"):
            FleetDB(tmp_path / "absent.sqlite", readonly=True)._conn()

    def test_readonly_reads_without_writing(self, tmp_path):
        path = tmp_path / "fleet.sqlite"
        rw = FleetDB(path)
        rw.open_experiment("exp", {})
        rw.record_unit("exp", "k1", _spec(), _payload())
        ro = FleetDB(path, readonly=True)
        assert ro.load_unit("exp", "k1").payload == _payload()
        with pytest.raises(sqlite3.OperationalError):
            ro._conn().execute("INSERT INTO quarantine VALUES (1,2,3,4,5,6)")
