"""Tests for split-counter blocks and the counter store."""

import pytest

from repro.crypto.counters import (
    COUNTERS_PER_BLOCK,
    MINOR_LIMIT,
    CounterBlock,
    CounterStore,
    SplitCounter,
)


class TestSplitCounter:
    def test_value_combines_major_and_minor(self):
        assert SplitCounter(0, 5).value == 5
        assert SplitCounter(1, 0).value == MINOR_LIMIT
        assert SplitCounter(2, 3).value == 2 * MINOR_LIMIT + 3


class TestCounterBlock:
    def test_initial_counters_zero(self):
        block = CounterBlock()
        for i in range(COUNTERS_PER_BLOCK):
            assert block.read(i).value == 0

    def test_increment_advances_one_line_only(self):
        block = CounterBlock()
        counter, overflowed = block.increment(7)
        assert not overflowed
        assert counter.value == 1
        assert block.read(7).value == 1
        assert block.read(8).value == 0

    def test_minor_overflow_resets_all_minors(self):
        block = CounterBlock()
        for _ in range(MINOR_LIMIT - 1):
            block.increment(3)
        block.increment(5)  # some other line has a nonzero minor
        counter, overflowed = block.increment(3)
        assert overflowed
        assert block.major == 1
        assert all(m == 0 for m in block.minors)
        assert counter.value == MINOR_LIMIT  # major<<7 | 0
        assert block.overflows == 1

    def test_update_count(self):
        block = CounterBlock()
        for _ in range(5):
            block.increment(0)
        assert block.updates == 5

    def test_snapshot_restore_roundtrip(self):
        block = CounterBlock()
        block.increment(1)
        block.increment(2)
        snap = block.snapshot()
        block.increment(1)
        block.restore(snap)
        assert block.read(1).value == 1
        assert block.read(2).value == 1

    def test_restore_rejects_bad_shape(self):
        block = CounterBlock()
        with pytest.raises(ValueError):
            block.restore((0, (1, 2, 3)))

    def test_encode_is_64_bytes(self):
        block = CounterBlock()
        assert len(block.encode()) == 64

    def test_encode_injective_on_minors(self):
        a = CounterBlock()
        b = CounterBlock()
        a.increment(0)
        b.increment(1)
        assert a.encode() != b.encode()

    def test_encode_decode_roundtrip(self):
        block = CounterBlock()
        for i in range(0, 64, 3):
            for _ in range(i % 7 + 1):
                block.increment(i)
        block.major = 12345
        clone = CounterBlock.decode(block.encode())
        assert clone.major == block.major
        assert clone.minors == block.minors

    def test_decode_rejects_truncated(self):
        with pytest.raises(ValueError):
            CounterBlock.decode(b"\x00" * 4)

    def test_index_bounds(self):
        block = CounterBlock()
        with pytest.raises(IndexError):
            block.read(64)
        with pytest.raises(IndexError):
            block.increment(-1)


class TestCounterStore:
    def test_locate_maps_address(self):
        page, line = CounterStore.locate(0x1000)  # 4KB page 1, line 0
        assert (page, line) == (1, 0)
        page, line = CounterStore.locate(0x1040)
        assert (page, line) == (1, 1)
        page, line = CounterStore.locate(0x2FC0)
        assert (page, line) == (2, 63)

    def test_blocks_created_on_demand(self):
        store = CounterStore()
        assert store.touched_pages == 0
        store.counter_for_address(0x10000)
        assert store.touched_pages == 1

    def test_increment_for_address(self):
        store = CounterStore()
        counter, overflowed = store.increment_for_address(0x5040)
        assert counter.value == 1
        assert not overflowed
        assert store.counter_for_address(0x5040).value == 1
        assert store.counter_for_address(0x5000).value == 0

    def test_same_page_shares_block(self):
        store = CounterStore()
        store.increment_for_address(0x7000)
        store.increment_for_address(0x7040)
        assert store.touched_pages == 1
