"""Tier-1 tests for the experiment service: protocol, scheduler, server.

Everything here runs in-process (the asyncio server bound to an
ephemeral loopback port); the subprocess end-to-end path is covered by
``python -m repro.service.smoke`` and the slow-marked soak test.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.config import ControllerKind, MiSUDesign
from repro.harness.parallel import RunUnit, execute_unit
from repro.harness.runner import RunResult
from repro.harness.trace_store import (
    ResultStore,
    TraceCache,
    default_result_cache_dir,
)
from repro.oracle.check import controller_matrix
from repro.service import protocol as proto
from repro.service.client import ServiceClient
from repro.service.scheduler import (
    DrainingError,
    ExperimentScheduler,
    JobStatus,
)
from repro.service.server import ExperimentServer, TokenBucket
from repro.tracing import JOB_EVENT_KINDS, JobEventLog

#: Small enough to finish in milliseconds, large enough to be a real run.
TX = 8

SPEC = proto.JobSpec(
    workload="hashmap", design="dolos-partial", transactions=TX, seed=1
)


def _spec(**changes) -> proto.JobSpec:
    return dataclasses.replace(SPEC, **changes).validate()


def _direct_payload(spec: proto.JobSpec, tmp_path) -> dict:
    unit = RunUnit(
        spec.workload, proto.resolve_config(spec), spec.transactions, spec.seed
    )
    return proto.result_payload(
        execute_unit(unit, TraceCache(tmp_path / "traces"))
    )


# ======================================================================
# Protocol
# ======================================================================
class TestJobSpec:
    def test_wire_roundtrip(self):
        spec = _spec(
            experiment_id="fig12",
            overrides={"transaction_size": 256, "wpq_coalescing": False},
        )
        assert proto.JobSpec.from_wire(spec.to_wire()) == spec

    @pytest.mark.parametrize(
        "changes",
        [
            {"workload": "no-such-workload"},
            {"design": "no-such-design"},
            {"transactions": 0},
            {"transactions": -5},
            {"overrides": {"no_such_knob": 1}},
            {"overrides": {"transaction_size": "not-a-number"}},
        ],
    )
    def test_validate_rejects(self, changes):
        spec = dataclasses.replace(SPEC, **changes)
        with pytest.raises(proto.ProtocolError):
            spec.validate()

    def test_from_wire_requires_core_fields(self):
        with pytest.raises(proto.ProtocolError, match="missing field"):
            proto.JobSpec.from_wire({"workload": "hashmap"})
        with pytest.raises(proto.ProtocolError):
            proto.JobSpec.from_wire("not an object")


class TestJobKey:
    def test_key_is_trace_store_shaped(self):
        key = proto.job_key(SPEC)
        assert len(key) == 24
        int(key, 16)  # hex

    def test_label_is_not_hashed(self):
        # Two users asking for the same simulation under different
        # experiment labels must share one execution.
        assert proto.job_key(SPEC) == proto.job_key(
            _spec(experiment_id="another-label")
        )

    @pytest.mark.parametrize(
        "changes",
        [
            {"workload": "btree"},
            {"design": "dolos-post"},
            {"transactions": TX + 1},
            {"seed": 2},
            {"overrides": {"wpq_coalescing": False}},
        ],
    )
    def test_simulation_relevant_fields_are_hashed(self, changes):
        assert proto.job_key(SPEC) != proto.job_key(_spec(**changes))

    def test_generator_version_is_folded_in(self):
        # The canonical form carries the trace generator version, so a
        # generator bump invalidates service results and disk traces
        # in lockstep.
        canonical = proto.canonical_job(SPEC)
        assert canonical["generator_version"] is not None
        assert canonical["protocol_version"] == proto.PROTOCOL_VERSION
        assert "experiment_id" not in canonical


class TestResolveConfig:
    def test_base_config_comes_from_the_oracle_matrix(self):
        assert proto.resolve_config(SPEC) == controller_matrix()[SPEC.design]

    def test_overrides_apply(self):
        config = proto.resolve_config(
            _spec(
                overrides={
                    "transaction_size": 256,
                    "adr_budget": 32,
                    "wpq_coalescing": False,
                }
            )
        )
        assert config.transaction_size == 256
        assert config.adr.budget_entries == 32
        assert config.wpq_coalescing is False

    def test_persist_model_override_preserves_other_core_fields(self):
        base = controller_matrix()[SPEC.design]
        config = proto.resolve_config(
            _spec(overrides={"persist_model": "strict"})
        )
        assert config.core.persist_model == "strict"
        assert config.core.frequency_ghz == base.core.frequency_ghz
        assert config.core.ipc == base.core.ipc
        assert config.core.mlp == base.core.mlp


class TestFraming:
    def test_roundtrip(self):
        message = {"type": "submit", "id": "r1", "job": SPEC.to_wire()}
        assert proto.decode_message(proto.encode_message(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode_message(b"\xff\xfe not json\n")
        with pytest.raises(proto.ProtocolError):
            proto.decode_message(b"[1, 2, 3]\n")
        with pytest.raises(proto.ProtocolError):
            proto.decode_message(b'{"no_type": true}\n')

    def test_line_bound_enforced_both_ways(self):
        big = {"type": "submit", "blob": "x" * proto.MAX_LINE_BYTES}
        with pytest.raises(proto.ProtocolError):
            proto.encode_message(big)
        with pytest.raises(proto.ProtocolError):
            proto.decode_message(b"x" * (proto.MAX_LINE_BYTES + 1))


class TestResultPayload:
    def _result(self) -> RunResult:
        return RunResult(
            workload="hashmap",
            controller=ControllerKind.DOLOS,
            misu_design=MiSUDesign.PARTIAL_WPQ,
            transactions=TX,
            payload_bytes=4096,
            cycles=12345,
            instructions=678,
            stats={"wpq.inserts": 9, "controller.writes": 11},
        )

    def test_payload_roundtrip(self):
        result = self._result()
        rebuilt = proto.payload_to_result(proto.result_payload(result))
        assert rebuilt == result

    def test_digest_is_key_order_invariant(self):
        payload = proto.result_payload(self._result())
        reordered = dict(reversed(list(payload.items())))
        assert proto.result_digest(payload) == proto.result_digest(reordered)
        # JSON roundtrip (the wire) preserves the digest too.
        wired = json.loads(json.dumps(payload))
        assert proto.result_digest(wired) == proto.result_digest(payload)


# ======================================================================
# Result store
# ======================================================================
class TestResultStore:
    PAYLOAD = {"workload": "hashmap", "cycles": 123, "stats": {"a": 1}}

    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("k" * 24, self.PAYLOAD)
        assert store.load("k" * 24) == self.PAYLOAD
        assert (store.hits, store.misses) == (1, 0)

    def test_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("0" * 24) is None
        assert store.misses == 1

    def test_corrupt_entry_is_quarantined_not_served(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "k" * 24
        path = store.store(key, self.PAYLOAD)
        entry = json.loads(path.read_text())
        entry["payload"]["cycles"] = 999  # digest no longer matches
        path.write_text(json.dumps(entry))
        assert store.load(key) is None
        assert store.quarantined == 1
        assert not path.exists()
        assert list((tmp_path / ResultStore.QUARANTINE_DIR).iterdir())

    def test_key_mismatch_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store("a" * 24, self.PAYLOAD)
        path.rename(store.path_for("b" * 24))
        assert store.load("b" * 24) is None
        assert store.quarantined == 1

    def test_default_dir_env_handling(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "r"))
        assert default_result_cache_dir() == tmp_path / "r"
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert default_result_cache_dir() is None
        monkeypatch.setenv("REPRO_RESULT_CACHE", "")
        assert default_result_cache_dir() is None


# ======================================================================
# Scheduler
# ======================================================================
def _run_async(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _scheduler(**kwargs) -> ExperimentScheduler:
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("batch_window", 0.005)
    kwargs.setdefault("result_cache_dir", None)
    return ExperimentScheduler(**kwargs)


class TestScheduler:
    def test_inline_execution_matches_direct_run(self, tmp_path):
        async def scenario():
            scheduler = _scheduler()
            job = await scheduler.submit(SPEC)
            await job.done
            await scheduler.close()
            return job

        job = _run_async(scenario())
        assert job.status is JobStatus.DONE
        assert job.payload == _direct_payload(SPEC, tmp_path)
        assert job.digest == proto.result_digest(job.payload)
        assert not job.cached and not job.degraded

    def test_inflight_duplicates_share_one_job(self):
        async def scenario():
            scheduler = _scheduler(batch_window=0.05)
            first = await scheduler.submit(SPEC)
            second = await scheduler.submit(_spec(experiment_id="other"))
            await first.done
            stats = scheduler.stats()
            await scheduler.close()
            return first, second, stats

        first, second, stats = _run_async(scenario())
        assert first is second
        assert stats["submitted"] == 2
        assert stats["unique_jobs"] == 1
        assert stats["dedup_inflight"] == 1
        assert stats["dedup_hit_rate"] == 0.5

    def test_result_store_replays_across_scheduler_restarts(self, tmp_path):
        store_dir = tmp_path / "results"

        async def first_life():
            scheduler = _scheduler(result_cache_dir=store_dir)
            job = await scheduler.submit(SPEC)
            await job.done
            await scheduler.close()
            return job.payload

        async def second_life():
            scheduler = _scheduler(result_cache_dir=store_dir)
            job = await scheduler.submit(SPEC)
            # Replay resolves synchronously inside submit.
            assert job.finished
            stats = scheduler.stats()
            await scheduler.close()
            return job, stats

        payload = _run_async(first_life())
        job, stats = _run_async(second_life())
        assert job.cached
        assert job.payload == payload
        assert stats["dedup_cached"] == 1
        assert stats["result_store_hits"] == 1

    def test_batching_groups_a_burst(self):
        specs = [_spec(seed=seed) for seed in (10, 11, 12)]

        async def scenario():
            scheduler = _scheduler(batch_window=30.0, batch_max=2)
            jobs = [await scheduler.submit(spec) for spec in specs]
            # batch_max=2: the first two dispatched immediately as one
            # batch; the third waits on the (long) window until drain
            # force-flushes it.
            await asyncio.gather(jobs[0].done, jobs[1].done)
            assert jobs[2].batch_id is None
            await scheduler.drain()
            stats = scheduler.stats()
            await scheduler.close()
            return jobs, stats

        jobs, stats = _run_async(scenario())
        assert jobs[0].batch_id == jobs[1].batch_id == 1
        assert jobs[2].batch_id == 2
        assert stats["completed"] == 3

    def test_drain_refuses_new_work_but_finishes_accepted(self):
        async def scenario():
            scheduler = _scheduler()
            job = await scheduler.submit(SPEC)
            await scheduler.drain()
            assert job.finished
            with pytest.raises(DrainingError):
                await scheduler.submit(_spec(seed=99))
            stats = scheduler.stats()
            await scheduler.close()
            return stats

        stats = _run_async(scenario())
        assert stats["draining"] is True
        assert stats["completed"] == 1
        assert stats["in_flight"] == 0

    def test_job_lifecycle_rides_the_event_timeline(self):
        events = JobEventLog()

        async def scenario():
            scheduler = _scheduler(events=events)
            job = await scheduler.submit(SPEC)
            await scheduler.submit(SPEC)  # dedup
            await job.done
            await scheduler.close()
            return job

        job = _run_async(scenario())
        counts = events.counts
        assert counts["job.submitted"] == 2
        assert counts["job.dedup"] == 1
        assert counts["job.batched"] == 1
        assert counts["job.started"] == 1
        assert counts["job.completed"] == 1
        kinds = [kind for _time, kind, _detail in events.history(job.key)]
        assert kinds[0] == "job.submitted"
        assert kinds[-1] == "job.completed"
        assert set(counts) <= set(JOB_EVENT_KINDS)


# ======================================================================
# Server (in-process, ephemeral loopback port)
# ======================================================================
class _AsyncClient:
    """Minimal asyncio frame client for in-process server tests."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, server: ExperimentServer) -> "_AsyncClient":
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        client = cls(reader, writer)
        hello = await client.read()
        assert hello["type"] == "hello"
        assert hello["version"] == proto.PROTOCOL_VERSION
        return client

    async def send(self, message: dict) -> None:
        self.writer.write(proto.encode_message(message))
        await self.writer.drain()

    async def read(self) -> dict:
        line = await self.reader.readline()
        assert line, "server closed the connection"
        return proto.decode_message(line)

    async def read_until(self, kinds) -> dict:
        while True:
            frame = await self.read()
            if frame["type"] in kinds:
                return frame

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _with_server(handler, **scheduler_kwargs):
    scheduler = _scheduler(**scheduler_kwargs)
    server = ExperimentServer(scheduler, port=0)
    await server.start()
    try:
        return await handler(server)
    finally:
        await server.shutdown()


class TestServer:
    def test_ping_stats_and_unknown_type(self):
        async def scenario(server):
            client = await _AsyncClient.connect(server)
            await client.send({"type": "ping"})
            assert (await client.read())["type"] == "pong"
            await client.send({"type": "stats"})
            stats = await client.read()
            assert stats["type"] == "stats"
            assert stats["submitted"] == 0
            await client.send({"type": "nope"})
            error = await client.read()
            assert (error["type"], error["code"]) == ("error", "unknown-type")
            await client.close()

        _run_async(_with_server(scenario))

    def test_submit_accepted_then_result(self, tmp_path):
        direct = _direct_payload(SPEC, tmp_path)

        async def scenario(server):
            client = await _AsyncClient.connect(server)
            await client.send(
                {"type": "submit", "id": "r1", "job": SPEC.to_wire()}
            )
            accepted = await client.read()
            assert accepted["type"] == "accepted"
            assert accepted["id"] == "r1"
            assert accepted["dedup"] == "new"
            assert accepted["key"] == proto.job_key(SPEC)
            result = await client.read_until({"result"})
            assert result["id"] == "r1"
            assert result["payload"] == direct
            assert result["digest"] == proto.result_digest(direct)
            await client.close()

        _run_async(_with_server(scenario))

    def test_duplicate_submissions_share_one_execution(self):
        async def scenario(server):
            client = await _AsyncClient.connect(server)
            await client.send(
                {"type": "submit", "id": "a", "job": SPEC.to_wire()}
            )
            await client.send(
                {"type": "submit", "id": "b", "job": SPEC.to_wire()}
            )
            frames = {}
            while len(frames) < 2:
                frame = await client.read_until({"result"})
                frames[frame["id"]] = frame
            await client.send({"type": "stats"})
            stats = await client.read_until({"stats"})
            await client.close()
            return frames, stats

        frames, stats = _run_async(_with_server(scenario))
        assert frames["a"]["payload"] == frames["b"]["payload"]
        assert frames["a"]["digest"] == frames["b"]["digest"]
        assert stats["submitted"] == 2
        assert stats["unique_jobs"] == 1
        assert stats["dedup_hits"] == 1

    def test_bad_job_gets_an_error_frame(self):
        async def scenario(server):
            client = await _AsyncClient.connect(server)
            bad = dict(SPEC.to_wire(), workload="no-such-workload")
            await client.send({"type": "submit", "id": "r1", "job": bad})
            error = await client.read_until({"error"})
            assert error["id"] == "r1"
            assert error["code"] == "bad-job"
            await client.close()

        _run_async(_with_server(scenario))

    def test_undecodable_line_is_an_error_not_a_crash(self):
        async def scenario(server):
            client = await _AsyncClient.connect(server)
            client.writer.write(b"this is not json\n")
            await client.writer.drain()
            error = await client.read_until({"error"})
            assert error["code"] == "protocol"
            # The connection survives a protocol error.
            await client.send({"type": "ping"})
            assert (await client.read_until({"pong"}))["type"] == "pong"
            await client.close()

        _run_async(_with_server(scenario))

    def test_bye_reports_dropped_progress(self):
        async def scenario(server):
            client = await _AsyncClient.connect(server)
            await client.send({"type": "bye"})
            bye = await client.read_until({"bye"})
            assert bye["dropped_progress"] == 0
            await client.close()

        _run_async(_with_server(scenario))

    def test_shutdown_drains_accepted_jobs_then_refuses(self, caplog):
        async def scenario():
            scheduler = _scheduler()
            server = ExperimentServer(scheduler, port=0)
            await server.start()
            # A listener that errors while closing must be logged with
            # its address on the drain path, never silently swallowed.
            for listener in server._servers:

                async def wait_closed_raises():
                    raise ConnectionResetError("listener torn down")

                listener.wait_closed = wait_closed_raises
            client = await _AsyncClient.connect(server)
            await client.send(
                {"type": "submit", "id": "r1", "job": SPEC.to_wire()}
            )
            accepted = await client.read_until({"accepted"})
            assert accepted["id"] == "r1"
            # Shut down with the job accepted but (possibly) unfinished:
            # the result must still be delivered.
            shutdown = asyncio.create_task(server.shutdown())
            result = await client.read_until({"result"})
            assert result["id"] == "r1"
            await shutdown
            # The still-open session now refuses new work.
            await client.send(
                {"type": "submit", "id": "r2", "job": _spec(seed=7).to_wire()}
            )
            refused = await client.read_until({"error"})
            assert refused["code"] == "draining"
            await client.close()
            return scheduler.stats()

        with caplog.at_level("DEBUG", logger="repro.service.server"):
            stats = _run_async(scenario())
        assert stats["draining"] is True
        assert stats["completed"] == 1
        drain_logs = [
            record for record in caplog.records
            if "failed to close" in record.getMessage()
        ]
        assert drain_logs, "listener close failure on drain was not logged"

    def test_blocking_service_client_against_inprocess_server(self, tmp_path):
        specs = [SPEC, _spec(design="dolos-post"), SPEC]
        direct = {
            spec.design: _direct_payload(spec, tmp_path) for spec in specs
        }

        def client_work(port: int):
            with ServiceClient(("127.0.0.1", port)) as client:
                assert client.ping()["type"] == "pong"
                frames = client.submit_many(specs)
                stats = client.stats()
            return frames, stats

        async def scenario(server):
            return await asyncio.to_thread(client_work, server.port)

        frames, stats = _run_async(_with_server(scenario))
        for spec, frame in zip(specs, frames):
            assert frame["payload"] == direct[spec.design]
        assert stats["submitted"] == 3
        assert stats["unique_jobs"] == 2
        assert stats["dedup_hits"] == 1


class TestTokenBucket:
    def test_burst_then_refill(self):
        async def scenario():
            bucket = TokenBucket(rate=1000.0, burst=2)
            loop = asyncio.get_running_loop()
            start = loop.time()
            for _ in range(3):
                await bucket.acquire()
            return loop.time() - start

        elapsed = _run_async(scenario())
        # Two tokens are free (burst); the third waits ~1/rate seconds.
        assert elapsed >= 0.0005
        assert elapsed < 1.0
