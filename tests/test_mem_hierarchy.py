"""Tests for the three-level cache hierarchy and persist primitives."""

import pytest

from repro.config import SimConfig
from repro.mem.hierarchy import CacheHierarchy


@pytest.fixture
def hierarchy(config):
    return CacheHierarchy(config)


class TestAccessPath:
    def test_cold_miss_needs_memory(self, hierarchy):
        result = hierarchy.access(0x1000, is_write=False)
        assert result.needs_memory
        expected = (
            hierarchy.l1.config.latency
            + hierarchy.l2.config.latency
            + hierarchy.llc.config.latency
        )
        assert result.latency == expected

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0x1000, False)
        result = hierarchy.access(0x1000, False)
        assert not result.needs_memory
        assert result.latency == hierarchy.l1.config.latency

    def test_store_marks_l1_dirty(self, hierarchy):
        hierarchy.access(0x1000, is_write=True)
        assert 0x1000 in hierarchy.dirty_lines()

    def test_load_does_not_dirty(self, hierarchy):
        hierarchy.access(0x1000, is_write=False)
        assert hierarchy.dirty_lines() == []

    def test_l2_hit_fills_l1(self, hierarchy):
        """After filling, evict from tiny L1 so the line sits in L2."""
        hierarchy.access(0x0, False)
        # Thrash the L1 set: L1 is 2-way; two conflicting lines evict 0x0.
        l1_sets = hierarchy.l1.config.num_sets
        stride = l1_sets * 64
        hierarchy.access(stride, False)
        hierarchy.access(2 * stride, False)
        assert not hierarchy.l1.contains(0x0)
        result = hierarchy.access(0x0, False)
        assert not result.needs_memory  # L2 (or LLC) hit
        assert hierarchy.l1.contains(0x0)


class TestPersistPrimitives:
    def test_clwb_dirty_line_returns_address(self, hierarchy):
        hierarchy.access(0x2000, is_write=True)
        assert hierarchy.clwb(0x2000) == 0x2000

    def test_clwb_keeps_line_resident_clean(self, hierarchy):
        hierarchy.access(0x2000, is_write=True)
        hierarchy.clwb(0x2000)
        assert hierarchy.l1.contains(0x2000)
        assert hierarchy.dirty_lines() == []

    def test_clwb_clean_line_returns_none(self, hierarchy):
        hierarchy.access(0x2000, is_write=False)
        assert hierarchy.clwb(0x2000) is None
        assert hierarchy.flush_misses == 1

    def test_clwb_absent_line_returns_none(self, hierarchy):
        assert hierarchy.clwb(0x9999000) is None

    def test_clwb_unaligned_address(self, hierarchy):
        hierarchy.access(0x2008, is_write=True)
        assert hierarchy.clwb(0x2010) == 0x2000

    def test_clflush_invalidates(self, hierarchy):
        hierarchy.access(0x2000, is_write=True)
        assert hierarchy.clflush(0x2000) == 0x2000
        assert not hierarchy.l1.contains(0x2000)

    def test_flush_latency_sums_levels(self, hierarchy, config):
        assert hierarchy.flush_latency() == (
            config.l1.latency + config.l2.latency + config.llc.latency
        )

    def test_double_clwb_second_is_clean(self, hierarchy):
        hierarchy.access(0x2000, is_write=True)
        assert hierarchy.clwb(0x2000) == 0x2000
        assert hierarchy.clwb(0x2000) is None


class TestWritebacks:
    def test_dirty_llc_eviction_reported(self, config):
        # Tiny hierarchy to force LLC evictions quickly.
        from repro.config import CacheConfig

        small = config.with_(
            l1=CacheConfig("L1", 2 * 64, 1, 2),
            l2=CacheConfig("L2", 4 * 64, 1, 20),
            llc=CacheConfig("LLC", 8 * 64, 1, 32),
        )
        hierarchy = CacheHierarchy(small)
        writebacks = []
        # Write many conflicting dirty lines through one set.
        for i in range(64):
            result = hierarchy.access(i * 8 * 64, is_write=True)
            writebacks.extend(result.writebacks)
        assert writebacks, "expected dirty lines to leave the LLC"
