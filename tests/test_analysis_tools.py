"""Tests for breakdown analysis, wear tracking and trace serialisation."""

import pytest

from repro.config import ControllerKind, SimConfig
from repro.cpu.trace import OP_CLWB, OP_FENCE, OP_LOAD, OP_STORE, OP_WORK
from repro.cpu.trace_io import load_trace, save_trace, trace_to_arrays
from repro.harness.breakdown import (
    CycleBreakdown,
    render_breakdowns,
    run_with_breakdown,
)
from repro.mem.nvm import NVMDevice
from repro.workloads import generate_trace

HEAP = 0x1_0000_0000


class TestCycleBreakdown:
    def test_components_sum_to_total(self):
        breakdown = CycleBreakdown(total=100, fence_stall=40, read_stall=10)
        assert breakdown.other == 50
        assert breakdown.fraction("fence_stall") == 0.4

    def test_other_never_negative(self):
        breakdown = CycleBreakdown(total=10, fence_stall=8, read_stall=8)
        assert breakdown.other == 0

    def test_zero_total(self):
        assert CycleBreakdown(0, 0, 0).fraction("fence_stall") == 0.0

    def test_run_with_breakdown_end_to_end(self):
        trace = generate_trace("ctree", 20, 512, seed=1)
        result, breakdown = run_with_breakdown(SimConfig(), trace, "ctree", 20)
        assert breakdown.total == result.cycles
        assert 0 < breakdown.fence_stall < breakdown.total
        assert breakdown.other > 0

    def test_dolos_has_smaller_fence_share_than_baseline(self):
        trace = generate_trace("ctree", 25, 1024, seed=1)
        _, base = run_with_breakdown(
            SimConfig().with_(controller=ControllerKind.PRE_WPQ_SECURE),
            trace, "ctree", 25,
        )
        _, dolos = run_with_breakdown(SimConfig(), trace, "ctree", 25)
        assert dolos.fraction("fence_stall") < base.fraction("fence_stall")

    def test_render(self):
        breakdown = CycleBreakdown(100, 40, 10)
        text = render_breakdowns([("x", breakdown)], "T")
        assert "40%" in text and "x" in text


class TestWearTracking:
    def test_wear_counts_media_writes(self, line_factory):
        nvm = NVMDevice()
        for i in range(3):
            nvm.write_line(0x1000, line_factory(str(i)))
        nvm.write_line(0x2000, line_factory("x"))
        assert nvm.wear_of(0x1000) == 3
        assert nvm.wear_of(0x2000) == 1
        assert nvm.wear_of(0x3000) == 0

    def test_wear_summary(self, line_factory):
        nvm = NVMDevice()
        for i in range(4):
            nvm.write_line(0x1000, line_factory(str(i)))
        nvm.write_line(0x2000, line_factory("y"))
        summary = nvm.wear_summary()
        assert summary["lines"] == 2
        assert summary["total"] == 5
        assert summary["max"] == 4
        assert summary["imbalance"] == pytest.approx(4 / 2.5)

    def test_empty_summary(self):
        assert NVMDevice().wear_summary()["lines"] == 0

    def test_unaligned_addresses_share_wear(self, line_factory):
        nvm = NVMDevice()
        nvm.write_line(0x1000, line_factory("a"))
        nvm.write_line(0x1020, line_factory("b"))
        assert nvm.wear_of(0x1000) == 2


class TestTraceIO:
    SAMPLE = [
        (OP_WORK, 100),
        (OP_LOAD, HEAP),
        (OP_STORE, HEAP + 64),
        (OP_CLWB, HEAP + 64),
        (OP_FENCE,),
    ]

    def test_roundtrip(self, tmp_path):
        path = save_trace(tmp_path / "t.npz", self.SAMPLE, {"workload": "x"})
        trace, header = load_trace(path)
        assert trace == self.SAMPLE
        assert header["workload"] == "x"
        assert header["version"] == 1

    def test_real_workload_roundtrip(self, tmp_path):
        original = generate_trace("hashmap", 10, 256, seed=1)
        path = save_trace(tmp_path / "hashmap.npz", original)
        loaded, _header = load_trace(path)
        assert loaded == original

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.harness.runner import run_trace

        original = generate_trace("ctree", 15, 256, seed=2)
        path = save_trace(tmp_path / "c.npz", original)
        loaded, _ = load_trace(path)
        a = run_trace(SimConfig(), original, "c", 15)
        b = run_trace(SimConfig(), loaded, "c", 15)
        assert a.cycles == b.cycles

    def test_version_check(self, tmp_path):
        import json

        import numpy as np

        bad = tmp_path / "bad.npz"
        np.savez(
            bad,
            codes=np.zeros(1, dtype=np.int64),
            operands=np.zeros(1, dtype=np.int64),
            header=np.frombuffer(json.dumps({"version": 99}).encode(), np.uint8),
        )
        with pytest.raises(ValueError):
            load_trace(bad)

    def test_arrays_shape(self):
        codes, operands = trace_to_arrays(self.SAMPLE)
        assert len(codes) == len(self.SAMPLE)
        assert operands[-1] == 0  # fence has no operand
