"""Tests for the Minor Security Unit design options."""

import pytest

from repro.config import MiSUDesign, SimConfig, WPQ_ENTRY_BYTES, WPQ_ENTRY_WITH_MAC_BYTES
from repro.core.misu import (
    FullWPQMiSU,
    PartialWPQMiSU,
    PostWPQMiSU,
    decode_entry,
    make_misu,
)
from repro.core.registers import PersistentRegisters
from repro.core.requests import WriteKind, WriteRequest
from repro.crypto.keys import KeyStore
from repro.crypto.prf import xor_bytes
from repro.wpq.queue import WritePendingQueue


def build(design):
    config = SimConfig().with_(misu_design=design)
    keys = KeyStore(11)
    registers = PersistentRegisters()
    wpq = WritePendingQueue(config.wpq_entries)
    return config, keys, registers, wpq, make_misu(config, keys, registers, wpq)


def protect_one(misu, wpq, address=0x1000, tag="x", line_factory=None):
    data = line_factory(tag)
    entry = wpq.try_allocate(WriteRequest(address, WriteKind.PERSIST, data=data))
    misu.protect(entry)
    return entry, data


class TestFactoryAndSizing:
    def test_factory_builds_right_class(self):
        assert isinstance(build(MiSUDesign.FULL_WPQ)[4], FullWPQMiSU)
        assert isinstance(build(MiSUDesign.PARTIAL_WPQ)[4], PartialWPQMiSU)
        assert isinstance(build(MiSUDesign.POST_WPQ)[4], PostWPQMiSU)

    def test_paper_wpq_sizes(self):
        """The 16/13/10 split of Section 5.2.1."""
        assert build(MiSUDesign.FULL_WPQ)[3].capacity == 16
        assert build(MiSUDesign.PARTIAL_WPQ)[3].capacity == 13
        assert build(MiSUDesign.POST_WPQ)[3].capacity == 10

    def test_pad_sizes_match_table3(self):
        assert build(MiSUDesign.FULL_WPQ)[4].pad_bytes == WPQ_ENTRY_BYTES
        assert build(MiSUDesign.PARTIAL_WPQ)[4].pad_bytes == WPQ_ENTRY_WITH_MAC_BYTES


class TestInsertionLatency:
    def test_full_charges_two_macs(self):
        config, *_, misu = build(MiSUDesign.FULL_WPQ)
        assert misu.insertion_latency() == 1 + 2 * config.security.mac_latency

    def test_partial_charges_one_mac(self):
        config, *_, misu = build(MiSUDesign.PARTIAL_WPQ)
        assert misu.insertion_latency() == 1 + config.security.mac_latency

    def test_post_commit_is_near_free(self):
        _, _, _, _, misu = build(MiSUDesign.POST_WPQ)
        assert misu.insertion_latency() == 1

    def test_post_deferred_latency(self):
        config, *_, misu = build(MiSUDesign.POST_WPQ)
        assert misu.deferred_latency() == 1 + config.security.mac_latency


class TestEncryption:
    def test_ciphertext_differs_from_plaintext(self, line_factory):
        _, _, _, wpq, misu = build(MiSUDesign.PARTIAL_WPQ)
        entry, data = protect_one(misu, wpq, line_factory=line_factory)
        assert entry.ciphertext is not None
        assert entry.ciphertext[:64] != data

    def test_decrypts_with_slot_pad(self, line_factory):
        _, _, _, wpq, misu = build(MiSUDesign.PARTIAL_WPQ)
        entry, data = protect_one(misu, wpq, line_factory=line_factory)
        pad = misu.pad_for_slot(entry.index)[: len(entry.ciphertext)]
        plaintext = xor_bytes(entry.ciphertext, pad)
        recovered_data, recovered_address = decode_entry(plaintext)
        assert recovered_data == data
        assert recovered_address == 0x1000

    def test_protect_sets_content_metadata(self, line_factory):
        _, _, _, wpq, misu = build(MiSUDesign.PARTIAL_WPQ)
        entry, _ = protect_one(misu, wpq, address=0x2040, line_factory=line_factory)
        assert entry.content_address == 0x2000 | 0x40
        assert not entry.cleared
        assert entry.pad_counter == misu.pad_counter_for_slot(entry.index)

    def test_pads_unique_per_slot(self):
        _, _, _, _, misu = build(MiSUDesign.PARTIAL_WPQ)
        pads = {misu.pad_for_slot(i) for i in range(misu.wpq.capacity)}
        assert len(pads) == misu.wpq.capacity

    def test_pads_change_with_register(self):
        _, _, registers, _, misu = build(MiSUDesign.PARTIAL_WPQ)
        old = misu.pad_for_slot(0)
        misu.advance_pad_counter()
        misu.regenerate_pads()
        assert misu.pad_for_slot(0) != old

    def test_advance_pad_counter_steps_by_capacity(self):
        _, _, registers, wpq, misu = build(MiSUDesign.PARTIAL_WPQ)
        misu.advance_pad_counter()
        assert registers.wpq_pad_counter == wpq.capacity


class TestEntryMACs:
    def test_mac_binds_ciphertext(self, line_factory):
        _, _, _, wpq, misu = build(MiSUDesign.PARTIAL_WPQ)
        entry, _ = protect_one(misu, wpq, line_factory=line_factory)
        good = entry.mac
        entry.ciphertext = b"\x00" * len(entry.ciphertext)
        assert misu.entry_mac(entry) != good

    def test_mac_binds_slot(self, line_factory):
        _, _, _, wpq, misu = build(MiSUDesign.PARTIAL_WPQ)
        a, _ = protect_one(misu, wpq, 0x1000, "a", line_factory)
        b, _ = protect_one(misu, wpq, 0x2000, "a", line_factory)
        assert a.mac != b.mac


class TestFullWPQTree:
    def test_root_updates_on_protect(self, line_factory):
        _, _, registers, wpq, misu = build(MiSUDesign.FULL_WPQ)
        empty_root = registers.wpq_root
        protect_one(misu, wpq, line_factory=line_factory)
        assert registers.wpq_root != empty_root

    def test_root_recomputable_from_entry_macs(self, line_factory):
        _, _, registers, wpq, misu = build(MiSUDesign.FULL_WPQ)
        for i in range(5):
            protect_one(misu, wpq, 0x1000 + i * 64, f"t{i}", line_factory)
        macs = [
            e.mac if e.mac else b"\x00" * 8 for e in wpq.entries
        ]
        assert misu.compute_root_over(macs) == registers.wpq_root

    def test_root_covers_cleared_content(self, line_factory):
        """Clearing an entry must not change the root (no re-MAC)."""
        _, _, registers, wpq, misu = build(MiSUDesign.FULL_WPQ)
        entry, _ = protect_one(misu, wpq, line_factory=line_factory)
        root = registers.wpq_root
        wpq.begin_fetch(entry)
        wpq.mark_cleared(entry)
        assert registers.wpq_root == root


class TestPostDeferred:
    def test_busy_window(self):
        _, _, _, _, misu = build(MiSUDesign.POST_WPQ)
        done = misu.start_deferred(now=100)
        assert misu.is_busy(150)
        assert not misu.is_busy(done)
        assert misu.deferred_macs == 1


class TestStorageOverhead:
    def test_table3_values(self):
        """Exact Table 3 reproduction at the default 16-entry budget."""
        expectations = {
            MiSUDesign.FULL_WPQ: (192, 72 * 16),
            MiSUDesign.PARTIAL_WPQ: (128, 80 * 13),
            MiSUDesign.POST_WPQ: (128, 80 * 10),
        }
        for design, (macs, pads) in expectations.items():
            overhead = build(design)[4].storage_overhead()
            assert overhead["persistent_counter"] == 8
            assert overhead["macs"] == macs
            assert overhead["encryption_pads"] == pads

    def test_tag_array_is_8b_per_entry(self):
        overhead = build(MiSUDesign.PARTIAL_WPQ)[4].storage_overhead()
        assert overhead["volatile_tag_array"] == 8 * 13
