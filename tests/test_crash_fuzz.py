"""Crash-point fuzzing: power-fail at arbitrary cycles, always recover.

The strongest crash-consistency statement the system can make: for
*any* crash instant during a write burst, recovery must (a) succeed,
(b) verify integrity, and (c) serve every write whose persist
completion had fired — with the data of either the persisted value or
a newer same-address value (persist ordering guarantees nothing more).
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ControllerKind, MiSUDesign, SimConfig, lazy_config
from repro.core.controller import DolosController, make_controller
from repro.core.requests import WriteKind, WriteRequest
from repro.engine import Simulator
from repro.recovery.crash import crash_system
from repro.recovery.recover import recover_system

HEAP = 0x1_0000_0000


def value(tag: str) -> bytes:
    return hashlib.blake2b(tag.encode(), digest_size=32).digest() * 2


def run_and_crash(
    design: MiSUDesign,
    crash_cycle: int,
    distinct: int,
    total: int,
    config: SimConfig = None,
    battery: bool = False,
):
    """Submit ``total`` writes over ``distinct`` addresses, crash, recover."""
    if config is None:
        config = SimConfig().with_(misu_design=design)
    sim = Simulator()
    controller = make_controller(sim, config)
    persisted_values = {}  # address -> list of persisted values, in order
    submitted_values = {}  # address -> every value ever submitted

    for i in range(total):
        address = HEAP + (i % distinct) * 64
        data = value(f"{design.value}-{i}")
        submitted_values.setdefault(address, []).append(data)

        def on_persist(_v, address=address, data=data):
            persisted_values.setdefault(address, []).append(data)

        done = controller.submit_write(
            WriteRequest(address, WriteKind.PERSIST, data=data)
        )
        done.subscribe(on_persist)

    sim.run(until=crash_cycle)
    image = crash_system(controller, battery=battery)
    report = recover_system(image)
    return persisted_values, submitted_values, report


@pytest.mark.parametrize(
    "design",
    [MiSUDesign.FULL_WPQ, MiSUDesign.PARTIAL_WPQ, MiSUDesign.POST_WPQ],
)
@given(crash_cycle=st.integers(min_value=1, max_value=60000))
@settings(max_examples=12, deadline=None)
def test_any_crash_point_recovers_consistently(design, crash_cycle):
    persisted_values, submitted_values, report = run_and_crash(
        design, crash_cycle, distinct=6, total=24
    )
    assert report.tree_root_verified
    for address in persisted_values:
        got = report.masu.secure_read(address)
        # The recovered value must be *some* submitted version of this
        # address — never garbage, never another address's data.  (A
        # same-address successor may legitimately appear: coalescing
        # admits it into the persistence domain when it merges with the
        # pending entry; the traced software stack orders such writes
        # with fences, which this adversarial burst deliberately omits.)
        assert got in submitted_values[address], (
            f"{address:#x}: recovered value is not any submitted version"
        )


@given(crash_cycle=st.integers(min_value=1, max_value=30000))
@settings(max_examples=8, deadline=None)
def test_unique_addresses_recover_newest(crash_cycle):
    """Without same-address overwrites, the persisted value is unique
    and must be exactly what recovery returns."""
    persisted_values, _submitted, report = run_and_crash(
        MiSUDesign.PARTIAL_WPQ, crash_cycle, distinct=24, total=24
    )
    for address, values in persisted_values.items():
        assert len(values) == 1
        assert report.masu.secure_read(address) == values[0]


@pytest.mark.parametrize(
    "design",
    [MiSUDesign.FULL_WPQ, MiSUDesign.PARTIAL_WPQ, MiSUDesign.POST_WPQ],
)
@given(crash_cycle=st.integers(min_value=1, max_value=60000))
@settings(max_examples=6, deadline=None)
def test_lazy_toc_any_crash_point_recovers(design, crash_cycle):
    """The Phoenix/ToC (lazy tree) Ma-SU must give the same any-crash
    guarantee as the eager Merkle tree."""
    persisted_values, submitted_values, report = run_and_crash(
        design, crash_cycle, distinct=6, total=24,
        config=lazy_config(misu_design=design),
    )
    assert report.tree_root_verified
    for address in persisted_values:
        got = report.masu.secure_read(address)
        assert got in submitted_values[address], (
            f"{address:#x}: recovered value is not any submitted version"
        )


@given(crash_cycle=st.integers(min_value=1, max_value=60000))
@settings(max_examples=8, deadline=None)
def test_eadr_battery_crash_recovers(crash_cycle):
    """eADR: persist completes at WPQ arrival; the battery flushes the
    whole queue through the Ma-SU at power failure.  Every write whose
    persist fired must therefore be recoverable."""
    persisted_values, submitted_values, report = run_and_crash(
        MiSUDesign.PARTIAL_WPQ, crash_cycle, distinct=6, total=24,
        config=SimConfig().with_(controller=ControllerKind.EADR_SECURE),
        battery=True,
    )
    assert report.tree_root_verified
    for address in persisted_values:
        got = report.masu.secure_read(address)
        assert got in submitted_values[address], (
            f"{address:#x}: recovered value is not any submitted version"
        )


def test_double_crash_double_recovery():
    """Crash, recover, run again on the same NVM, crash again."""
    config = SimConfig()
    sim = Simulator()
    controller = DolosController(sim, config)
    controller.start()
    first_data = value("gen1")
    controller.submit_write(WriteRequest(HEAP, WriteKind.PERSIST, data=first_data))
    sim.run(until=2000)
    image1 = crash_system(controller)
    report1 = recover_system(image1)
    assert report1.masu.secure_read(HEAP) == first_data

    # Second generation reuses NVM + keys + registers + recovered Ma-SU.
    from repro.recovery.recover import reboot_controller

    sim2 = Simulator()
    controller2 = reboot_controller(sim2, image1, report1)
    second_data = value("gen2")
    controller2.submit_write(
        WriteRequest(HEAP + 64, WriteKind.PERSIST, data=second_data)
    )
    sim2.run(until=2000)
    image2 = crash_system(controller2)
    report2 = recover_system(image2)
    assert report2.masu.secure_read(HEAP) == first_data
    assert report2.masu.secure_read(HEAP + 64) == second_data
    assert report2.new_boot_epoch == 2
