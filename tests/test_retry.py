"""Tier-1 tests for the shared retry policy and circuit breaker."""

from __future__ import annotations

import random

import pytest

from repro.common.retry import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_QUARANTINED,
    CircuitBreaker,
    RetryExhausted,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.25)
        def schedule():
            rng = random.Random(7)
            return [policy.delay(a, rng) for a in range(3)]

        first, again = schedule(), schedule()
        assert first == again  # same seed, same schedule
        for attempt, delay in enumerate(first):
            raw = min(8.0, 1.0 * 2.0 ** attempt)
            assert raw * 0.75 <= delay <= raw * 1.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_call_retries_then_succeeds(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("nope")
            return "done"

        policy = RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0)
        result = policy.call(
            flaky, retry_on=(ConnectionError,), sleep=sleeps.append
        )
        assert result == "done"
        assert len(attempts) == 3
        assert sleeps == [0.01, 0.02]

    def test_call_exhaustion_raises_typed_error_with_cause(self):
        policy = RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        boom = ValueError("root cause")

        def always_fails():
            raise boom

        with pytest.raises(RetryExhausted) as excinfo:
            policy.call(
                always_fails, retry_on=(ValueError,), sleep=lambda _: None
            )
        assert excinfo.value.attempts == 3
        assert excinfo.value.__cause__ is boom

    def test_call_does_not_retry_unlisted_exceptions(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise KeyError("not retryable")

        policy = RetryPolicy(attempts=5, base_delay=0.0, jitter=0.0)
        with pytest.raises(KeyError):
            policy.call(
                wrong_kind, retry_on=(ConnectionError,),
                sleep=lambda _: None,
            )
        assert len(calls) == 1

    def test_on_retry_hook_fires_per_backoff(self):
        seen = []
        policy = RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryExhausted):
            policy.call(
                lambda: (_ for _ in ()).throw(OSError("x")),
                retry_on=(OSError,),
                sleep=lambda _: None,
                on_retry=lambda attempt, exc: seen.append(attempt),
            )
        assert seen == [0, 1]

    def test_from_env_reads_overrides(self, monkeypatch):
        monkeypatch.setenv("X_RETRY_ATTEMPTS", "7")
        monkeypatch.setenv("X_RETRY_BASE", "0.5")
        monkeypatch.setenv("X_RETRY_JITTER", "0")
        policy = RetryPolicy.from_env("X_RETRY", attempts=2, max_delay=9.0)
        assert policy.attempts == 7  # env beats the caller default
        assert policy.base_delay == 0.5
        assert policy.jitter == 0.0
        assert policy.max_delay == 9.0  # caller default survives

    def test_from_env_defaults_without_env(self):
        policy = RetryPolicy.from_env("UNSET_PREFIX_ZZZ", attempts=3)
        assert policy.attempts == 3
        assert policy.jitter == RetryPolicy().jitter


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def _breaker(self, **kwargs) -> CircuitBreaker:
        clock = _Clock()
        breaker = CircuitBreaker(clock=clock, **kwargs)
        breaker._test_clock = clock
        return breaker

    def test_opens_after_consecutive_failures(self):
        breaker = self._breaker(failure_threshold=3)
        assert breaker.allow()
        breaker.record_failure("a")
        breaker.record_failure("b")
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure("c")
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = self._breaker(failure_threshold=2)
        breaker.record_failure("x")
        breaker.record_success()
        breaker.record_failure("x")
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_allows_exactly_one_probe(self):
        breaker = self._breaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure("boom")
        assert not breaker.allow()
        breaker._test_clock.now = 11.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # second caller refused mid-probe

    def test_probe_success_closes(self):
        breaker = self._breaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure("boom")
        breaker._test_clock.now = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_counts_a_trip(self):
        breaker = self._breaker(failure_threshold=1, cooldown=1.0,
                                max_trips=10)
        breaker.record_failure("first")
        assert breaker.trips == 1
        breaker._test_clock.now = 2.0
        assert breaker.allow()
        breaker.record_failure("probe failed")
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2

    def test_quarantine_after_max_trips_is_permanent(self):
        breaker = self._breaker(failure_threshold=1, cooldown=0.0,
                                max_trips=2)
        breaker.record_failure("one")
        breaker._test_clock.now = 1.0
        assert breaker.allow()
        breaker.record_failure("two")
        assert breaker.state == BREAKER_QUARANTINED
        assert breaker.quarantined
        assert not breaker.allow()
        breaker.record_success()  # cannot resurrect
        assert breaker.state == BREAKER_QUARANTINED
        assert breaker.reason == "two"

    def test_snapshot_is_report_shaped(self):
        breaker = self._breaker(failure_threshold=1)
        breaker.record_failure("why")
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": BREAKER_OPEN,
            "trips": 1,
            "consecutive_failures": 0,
            "reason": "why",
        }
