"""Tests for generator processes, signals and waiting."""

import pytest

from repro.engine import Delay, Process, Signal, SimulationError, Simulator, WaitSignal
from repro.engine.process import spawn


class TestDelay:
    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Delay(-5)


class TestSignal:
    def test_fire_resumes_all_waiters(self, sim):
        signal = Signal(sim, "s")
        seen = []
        signal.subscribe(lambda v: seen.append(("a", v)))
        signal.subscribe(lambda v: seen.append(("b", v)))
        signal.fire(42)
        assert seen == [("a", 42), ("b", 42)]

    def test_fire_clears_waiters(self, sim):
        signal = Signal(sim)
        signal.subscribe(lambda v: None)
        signal.fire()
        assert signal.waiter_count == 0
        signal.fire()  # no waiters: no error
        assert signal.fire_count == 2

    def test_subscribers_added_during_fire_wait_for_next(self, sim):
        signal = Signal(sim)
        seen = []

        def resubscribe(value):
            seen.append(value)
            signal.subscribe(lambda v: seen.append(v))

        signal.subscribe(resubscribe)
        signal.fire(1)
        assert seen == [1]
        signal.fire(2)
        assert seen == [1, 2]


class TestProcess:
    def test_simple_delays_accumulate(self, sim):
        log = []

        def worker():
            yield Delay(5)
            log.append(sim.now)
            yield Delay(7)
            log.append(sim.now)

        Process(sim, worker())
        sim.run()
        assert log == [5, 12]

    def test_return_value_captured(self, sim):
        def worker():
            yield Delay(1)
            return "result"

        process = Process(sim, worker())
        sim.run()
        assert process.finished
        assert process.result == "result"

    def test_wait_signal_receives_fired_value(self, sim):
        signal = Signal(sim)
        got = []

        def worker():
            value = yield WaitSignal(signal)
            got.append((sim.now, value))

        Process(sim, worker())
        sim.schedule(30, lambda: signal.fire("payload"))
        sim.run()
        assert got == [(30, "payload")]

    def test_wait_on_child_process(self, sim):
        def child():
            yield Delay(10)
            return 99

        def parent():
            result = yield Process(sim, child())
            return result + 1

        p = Process(sim, parent())
        sim.run()
        assert p.result == 100
        assert sim.now == 10

    def test_wait_on_already_finished_child(self, sim):
        def child():
            yield Delay(1)
            return "done"

        child_proc = Process(sim, child())

        def parent():
            yield Delay(50)
            result = yield child_proc
            return result

        p = Process(sim, parent())
        sim.run()
        assert p.result == "done"

    def test_done_signal_fires_on_completion(self, sim):
        seen = []

        def worker():
            yield Delay(3)
            return "v"

        p = Process(sim, worker())
        p.done_signal.subscribe(lambda v: seen.append(v))
        sim.run()
        assert seen == ["v"]

    def test_start_delay(self, sim):
        log = []

        def worker():
            log.append(sim.now)
            yield Delay(1)

        Process(sim, worker(), start_delay=25)
        sim.run()
        assert log == [25]

    def test_unsupported_directive_raises(self, sim):
        def worker():
            yield "garbage"

        # With an idle queue the first step runs inside the
        # constructor, so the bad directive surfaces right there.
        with pytest.raises(SimulationError):
            Process(sim, worker())
            sim.run()

    def test_unsupported_directive_raises_deferred(self, sim):
        def worker():
            yield "garbage"

        # A same-cycle event forces the first step to defer; the error
        # then surfaces from run(), as before the synchronous-start
        # optimization.
        sim.schedule(0, lambda: None)
        Process(sim, worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_spawn_helper(self, sim):
        def worker():
            yield Delay(2)
            return 5

        p = spawn(sim, worker(), name="w")
        sim.run()
        assert p.result == 5

    def test_two_processes_interleave(self, sim):
        log = []

        def worker(name, step):
            for _ in range(3):
                yield Delay(step)
                log.append((name, sim.now))

        Process(sim, worker("fast", 2))
        Process(sim, worker("slow", 5))
        sim.run()
        assert log == [
            ("fast", 2), ("fast", 4), ("slow", 5),
            ("fast", 6), ("slow", 10), ("slow", 15),
        ]
