"""Characterization tests for the open-loop scenario layer (PR 10).

Four behavioural contracts, pinned against a checked-in fixture where
exactness matters and against qualitative shape everywhere else:

1. **Load curve shape** — p99 sojourn is non-decreasing in offered
   load for every config, and the saturation knees order the designs
   the paper's closed-loop numbers predict: battery-backed eADR rides
   out the most load, Pre-WPQ-Secure (eager) saturates first, Dolos
   sits in between.
2. **Open vs closed divergence** — at matched throughput the open-loop
   p99 sojourn is a multiple of the closed-loop p99 transaction
   latency: queueing delay the paper's methodology cannot see.
3. **Traffic verdicts** — each adversarial generator is flagged with
   exactly its own kind at every seed swept; benign workloads stay
   unflagged across the whole skew dial.
4. **Fixture snapshot** — the full loadcurve report for a pinned
   (workload, transactions, seed, configs) cell is byte-identical to
   ``tests/data/loadcurve_fixture.json`` (the simulator is
   deterministic; any diff is a real behaviour change).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.attacks.traffic import scan_tenants, scan_traffic
from repro.matrix import controller_matrix
from repro.scenarios import TenantSpec, adversarial_trace
from repro.scenarios.loadcurve import knee_rate, loadcurve_report, run_scenario

FIXTURE_PATH = Path(__file__).parent / "data" / "loadcurve_fixture.json"
FIXTURE = json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def report():
    """Recompute the fixture's loadcurve cell once per module."""
    return loadcurve_report(
        workload=FIXTURE["workload"],
        transactions=FIXTURE["transactions"],
        seed=FIXTURE["seed"],
        rates=tuple(FIXTURE["rates"]),
        configs=tuple(sorted(FIXTURE["configs"])),
        skew=FIXTURE["skew"],
        knee_factor=FIXTURE["knee_factor"],
    )


# ----------------------------------------------------------------------
# 1 + 4. Load-curve shape, pinned byte-for-byte
# ----------------------------------------------------------------------
class TestLoadCurve:
    def test_report_matches_fixture_exactly(self, report):
        assert json.loads(json.dumps(report, sort_keys=True)) == FIXTURE

    def test_p99_sojourn_non_decreasing_in_offered_load(self, report):
        for label, entry in report["configs"].items():
            p99s = [point["p99"] for point in entry["points"]]
            assert p99s == sorted(p99s), (
                f"{label}: p99 not monotone in load: {p99s}"
            )

    def test_knees_order_the_designs(self, report):
        knees = {
            label: entry["knee_rate"]
            for label, entry in report["configs"].items()
        }
        assert knees["prewpq-eager"] < knees["dolos-full"] < knees["eadr"]

    def test_knee_detector_contract(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        assert knee_rate(rates, [100, 150, 250, 900]) == 0.3
        assert knee_rate(rates, [100, 110, 120, 130]) == 0.4  # never crosses
        with pytest.raises(ValueError):
            knee_rate([0.1], [1, 2])

    def test_heavier_load_never_lowers_light_load_p99(self, report):
        """The lightest rate's p99 approximates the no-queueing floor:
        every heavier point must sit at or above it."""
        for entry in report["configs"].values():
            floor = entry["points"][0]["p99"]
            assert all(point["p99"] >= floor for point in entry["points"])


# ----------------------------------------------------------------------
# 2. Open vs closed loop
# ----------------------------------------------------------------------
class TestOpenVsClosed:
    def test_open_loop_p99_diverges_at_matched_throughput(self, report):
        """At 90% of each config's closed-loop completion rate, the
        open-loop tail is a clear multiple of the closed-loop tail —
        the queueing delay closed-loop measurement structurally hides."""
        for label, entry in report["configs"].items():
            ratio = entry["matched_load"]["open_closed_p99_ratio"]
            assert ratio > 1.5, f"{label}: open/closed p99 ratio {ratio}"

    def test_closed_loop_reference_is_populated(self, report):
        for entry in report["configs"].values():
            closed = entry["closed_loop"]
            assert closed["cycles"] > 0
            assert closed["tx_p99"] > 0
            assert closed["completed_per_kcycle"] > 0


# ----------------------------------------------------------------------
# 3. Traffic verdicts
# ----------------------------------------------------------------------
ADVERSARY_KINDS = ("wpq-hammer", "counter-wear", "stride-walk")


class TestTrafficVerdicts:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_every_adversarial_trace_is_flagged_as_itself(self, kind, seed):
        verdict = scan_traffic(adversarial_trace(kind, 30, seed=seed))
        assert verdict.flagged
        assert verdict.kinds == [kind], (
            f"{kind} seed {seed} misclassified as {verdict.kinds}: "
            f"{verdict.metrics}"
        )

    @pytest.mark.parametrize("workload", ["hashmap", "btree", "redis"])
    @pytest.mark.parametrize("skew", [0.0, 0.8, 1.2])
    def test_benign_traffic_never_flags(self, workload, skew):
        from repro.scenarios.tenants import build_tenant_stream

        blocks = build_tenant_stream(
            TenantSpec(workload, 0.05, skew=skew), 0, 30, seed=1
        )
        trace = [op for block in blocks for op in block.ops]
        verdict = scan_traffic(trace)
        assert not verdict.flagged, (
            f"{workload} skew={skew} false positive {verdict.kinds}: "
            f"{verdict.metrics}"
        )

    def test_scenario_attributes_verdicts_per_tenant(self):
        """A benign tenant and a hammering tenant in one interleaved
        trace: the scanner convicts exactly the attacker."""
        config = controller_matrix()["dolos-full"]
        payload = run_scenario(
            config,
            [
                TenantSpec("hashmap", 0.05, skew=0.8),
                TenantSpec("wpq-hammer", 0.05),
            ],
            20,
            seed=2,
        )
        assert payload["tenants"]["0"]["flagged"] is False
        assert payload["tenants"]["1"]["flagged"] is True
        assert payload["tenants"]["1"]["kinds"] == ["wpq-hammer"]
        assert payload["tenants"]["0"]["sojourn_p99"] > 0
        assert payload["tenants"]["1"]["sojourn_p99"] > 0

    def test_scan_tenants_defaults_unstamped_trace_to_tenant_zero(self):
        verdicts = scan_tenants(adversarial_trace("stride-walk", 20, seed=0))
        assert list(verdicts) == [0]
        assert verdicts[0].kinds == ["stride-walk"]


class TestLoadcurveCli:
    """`python -m repro.harness loadcurve` — the surface the CI smoke
    job and the docs both lean on."""

    def test_cli_prints_table_and_writes_report(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        out_path = tmp_path / "lc" / "report.json"
        code = main(
            [
                "--workload", "hashmap",
                "--transactions", "12",
                "--seed", "1",
                "--rates", "0.02,0.18",
                "--configs", "dolos-full",
                "--out", str(out_path),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "Sojourn latency vs offered load" in captured
        assert "dolos-full: knee" in captured
        assert f"[wrote {out_path}]" in captured

        report = json.loads(out_path.read_text())
        assert list(report["configs"]) == ["dolos-full"]
        assert report["configs"]["dolos-full"]["knee_rate"] in (0.02, 0.18)
        # CLI output must be the library report verbatim.
        direct = loadcurve_report(
            workload="hashmap",
            transactions=12,
            seed=1,
            rates=(0.02, 0.18),
            configs=["dolos-full"],
            skew=0.8,
        )
        assert json.loads(json.dumps(direct, sort_keys=True)) == report
