"""Span tracing: assembly, folding, overhead, and reconciliation."""

from __future__ import annotations

import json

import pytest

from repro.config import SimConfig
from repro.cpu.trace import OP_CLWB, OP_FENCE, OP_STORE, OP_WORK
from repro.harness.export import load_spans_jsonl, write_spans_jsonl
from repro.harness.runner import run_trace
from repro.oracle.check import controller_matrix
from repro.tracing import (
    PersistSpan,
    SpanTracer,
    reconcile,
    render_stage_table,
    run_traced,
)
from repro.workloads import generate_trace


def _small_trace(config: SimConfig, transactions: int = 10, seed: int = 0):
    return generate_trace(
        "hashmap", transactions, config.transaction_size, seed
    )


class TestSpanAssembly:
    @pytest.mark.parametrize("label", sorted(controller_matrix()))
    def test_one_span_per_wpq_insert(self, label):
        config = controller_matrix()[label]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        tracer = run.tracer
        # Every allocated entry drained into exactly one span; folds
        # match the queue's own coalesce count.
        assert tracer.unmatched_events == 0
        assert tracer.dropped_events == 0
        assert not tracer.open
        assert len(tracer.spans) == run.result.stats["wpq.inserts"]
        folds = sum(span.coalesced for span in tracer.spans)
        assert folds == run.result.stats["wpq.coalesced_total"]

    @pytest.mark.parametrize("label", sorted(controller_matrix()))
    def test_persist_spans_carry_core_timestamps(self, label):
        config = controller_matrix()[label]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        persists = [s for s in run.tracer.spans if s.kind == "P"]
        assert persists
        for span in persists:
            assert span.issue is not None
            assert span.alloc is not None
            assert span.persisted is not None
            assert span.drain is not None
            assert span.issue <= span.alloc <= span.drain

    def test_post_wpq_protect_lands_after_persist(self):
        config = controller_matrix()["dolos-post"]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        span = next(s for s in run.tracer.spans if s.kind == "P")
        assert span.protect is not None
        assert span.protect > span.persisted
        assert any(
            label == "persisted->protect"
            for label, _delta in span.stage_deltas()
        )
        # The deferred engine's busy time is what that delta measures.
        assert run.result.stats.get("misu.protected", 0) > 0

    def test_coalesced_writes_fold_into_one_span(self):
        config = controller_matrix()["dolos-full"]
        # Build a backlog (distinct lines) so the Ma-SU is busy, then
        # hit one line twice: the second write must coalesce, not
        # allocate.
        hot = 0x9000
        ops = []
        for i in range(8):
            ops.append((OP_STORE, 0x1000 + 64 * i))
            ops.append((OP_CLWB, 0x1000 + 64 * i))
        ops.append((OP_STORE, hot))
        ops.append((OP_CLWB, hot))
        ops.append((OP_STORE, hot))
        ops.append((OP_CLWB, hot))
        ops.append((OP_WORK, 10))
        ops.append((OP_FENCE,))
        run = run_traced(config, ops)
        tracer = run.tracer
        hot_spans = [s for s in tracer.spans if s.address == hot]
        assert len(hot_spans) == 1
        assert hot_spans[0].coalesced >= 1
        assert len(hot_spans[0].folded_seqs) == hot_spans[0].coalesced
        folds = sum(span.coalesced for span in tracer.spans)
        assert folds == run.result.stats["wpq.coalesced_total"]


class TestTracerOverhead:
    @pytest.mark.parametrize("label", sorted(controller_matrix()))
    def test_attaching_a_tracer_never_moves_time(self, label):
        """The tracer is pure recording: identical simulated cycles."""
        config = controller_matrix()[label]
        trace = _small_trace(config, transactions=5)
        plain = run_trace(config, trace, "hashmap", 5)
        traced = run_traced(config, trace, "hashmap", 5)
        assert traced.result.cycles == plain.cycles
        assert traced.result.instructions == plain.instructions
        assert (
            traced.result.stats["core.fence_stall_cycles"]
            == plain.stats["core.fence_stall_cycles"]
        )


class TestReconciliation:
    @pytest.mark.parametrize("label", sorted(controller_matrix()))
    def test_trace_reconciles_with_breakdown(self, label):
        config = controller_matrix()[label]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        outcome = reconcile(run.tracer, run.breakdown)
        assert outcome.passed, outcome.failures
        # Events and stat are emitted at the same instants: exact.
        assert outcome.tracer_fence_cycles == outcome.breakdown_fence_cycles
        # The core can only stall while a persist is outstanding.
        assert (
            outcome.breakdown_fence_cycles
            <= outcome.outstanding_union_cycles + outcome.slack_cycles
        )

    def test_mismatch_beyond_slack_fails(self):
        config = controller_matrix()["dolos-full"]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        from repro.harness.breakdown import CycleBreakdown

        inflated = CycleBreakdown(
            total=run.breakdown.total,
            fence_stall=run.breakdown.fence_stall * 2 + 10_000,
            read_stall=run.breakdown.read_stall,
        )
        outcome = reconcile(run.tracer, inflated)
        assert not outcome.passed
        assert any("mismatch" in f for f in outcome.failures)

    def test_dropped_events_fail_reconciliation(self):
        config = controller_matrix()["dolos-full"]
        trace = _small_trace(config)
        from repro.tracing.report import run_traced as traced

        run = traced(config, trace, "hashmap", 10, max_events=50)
        outcome = reconcile(run.tracer, run.breakdown)
        assert run.tracer.dropped_events > 0
        assert not outcome.passed


class TestSpanSerialization:
    def test_jsonl_roundtrip(self, tmp_path):
        config = controller_matrix()["dolos-full"]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        path = write_spans_jsonl(run.spans, tmp_path / "spans.jsonl")
        loaded = load_spans_jsonl(path)
        assert len(loaded) == len(run.spans)
        for original, restored in zip(run.spans, loaded):
            assert restored.to_json_dict() == original.to_json_dict()

    def test_schema_fields(self, tmp_path):
        span = PersistSpan(slot=3, seq=7, address=0x1040, kind="P",
                           issue=10, alloc=20, persisted=21, drain=400)
        path = write_spans_jsonl([span], tmp_path / "one.jsonl")
        record = json.loads(path.read_text())
        assert record["address"] == "0x1040"
        assert record["stages"] == {
            "issue": 10, "alloc": 20, "persisted": 21, "drain": 400,
        }
        assert record["deltas"]["issue->alloc"] == 10
        assert record["total"] == 390

    def test_stage_table_renders_percentiles(self):
        config = controller_matrix()["dolos-full"]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        table = render_stage_table("dolos-full", run.spans)
        assert "p50" in table and "p95" in table and "p99" in table
        assert "total" in table


class TestTraceCli:
    def test_trace_subcommand_smoke(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        code = main([
            "trace", "hashmap", "--transactions", "5",
            "--config", "dolos_full", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-stage persist latency" in out
        for label in controller_matrix():
            assert label in out
        span_log = tmp_path / "hashmap-dolos-full.spans.jsonl"
        assert span_log.exists()
        assert load_spans_jsonl(span_log)

    def test_unknown_config_rejected(self, tmp_path):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["trace", "hashmap", "--config", "nope",
                  "--out", str(tmp_path)])


class TestDeferredEngineAccounting:
    def test_post_wpq_tracks_deferred_busy_cycles(self):
        config = controller_matrix()["dolos-post"]
        run = run_traced(config, _small_trace(config), "hashmap", 10)
        # The misu attribute lives on the controller inside the run;
        # assert through the span evidence plus the protect counter.
        assert run.result.stats.get("misu.protected", 0) > 0
        spans = [s for s in run.spans if s.kind == "P"]
        deltas = dict(
            pair for span in spans for pair in span.stage_deltas()
        )
        assert "persisted->protect" in deltas
