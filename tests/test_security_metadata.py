"""Tests for the metadata cache, data-MAC store, Anubis shadow and Osiris."""

import pytest

from repro.config import CacheConfig
from repro.crypto.prf import ctr_pad, xor_bytes
from repro.security.anubis import (
    KIND_COUNTER,
    KIND_TREE_NODE,
    ShadowTracker,
)
from repro.security.data_mac import DataMACStore
from repro.security.metadata_cache import MetadataCache
from repro.security.osiris import OsirisRecovery

MAC_KEY = b"\x03" * 32
ENC_KEY = b"\x04" * 32


@pytest.fixture
def meta_cache():
    return MetadataCache(CacheConfig("m", 8 * 64, 2, 2), "m")


class TestMetadataCache:
    def test_miss_then_hit(self, meta_cache):
        assert not meta_cache.access(5, False)
        assert meta_cache.access(5, False)
        assert meta_cache.misses == 1
        assert meta_cache.accesses == 2

    def test_dirty_eviction_callback(self, meta_cache):
        evicted = []
        meta_cache.on_dirty_eviction = evicted.append
        # 4 sets x 2 ways; keys colliding in one set: stride = num_sets.
        sets = 4
        meta_cache.access(0, True)
        meta_cache.access(sets, True)
        meta_cache.access(2 * sets, True)  # evicts key 0 dirty
        assert evicted == [0]

    def test_dirty_keys(self, meta_cache):
        meta_cache.access(1, True)
        meta_cache.access(2, False)
        assert meta_cache.dirty_keys() == [1]

    def test_flush_all(self, meta_cache):
        flushed = []
        meta_cache.on_dirty_eviction = flushed.append
        meta_cache.access(1, True)
        meta_cache.access(2, True)
        assert meta_cache.flush_all() == [1, 2]
        assert flushed == [1, 2]
        assert meta_cache.dirty_keys() == []

    def test_hit_rate(self, meta_cache):
        meta_cache.access(1, False)
        meta_cache.access(1, False)
        assert meta_cache.hit_rate == 0.5
        assert MetadataCache(CacheConfig("e", 64, 1, 1)).hit_rate == 0.0


class TestDataMACStore:
    def test_store_verify_roundtrip(self, nvm, line_factory):
        store = DataMACStore(nvm, MAC_KEY)
        data = line_factory("v")
        store.store(0x1000, 7, data)
        assert store.verify(0x1000, 7, data)

    def test_wrong_counter_fails(self, nvm, line_factory):
        store = DataMACStore(nvm, MAC_KEY)
        data = line_factory("v")
        store.store(0x1000, 7, data)
        assert not store.verify(0x1000, 8, data)

    def test_wrong_address_fails(self, nvm, line_factory):
        store = DataMACStore(nvm, MAC_KEY)
        data = line_factory("v")
        store.store(0x1000, 7, data)
        assert not store.verify(0x2000, 7, data)

    def test_missing_mac_fails(self, nvm, line_factory):
        store = DataMACStore(nvm, MAC_KEY)
        assert not store.verify(0x1000, 0, line_factory("v"))
        assert store.verify_failures == 1

    def test_tampered_mac_fails(self, nvm, line_factory):
        store = DataMACStore(nvm, MAC_KEY)
        data = line_factory("v")
        store.store(0x1000, 7, data)
        store.tamper(0x1000, b"\x00" * 8)
        assert not store.verify(0x1000, 7, data)

    def test_unaligned_address_normalized(self, nvm, line_factory):
        store = DataMACStore(nvm, MAC_KEY)
        data = line_factory("v")
        store.store(0x1010, 7, data)
        assert store.load(0x1000) is not None


class TestShadowTracker:
    def test_record_and_iterate(self, nvm):
        shadow = ShadowTracker(nvm)
        shadow.record(KIND_COUNTER, 5, b"five")
        shadow.record(KIND_TREE_NODE, ShadowTracker.tree_key(2, 9), b"node")
        entries = list(shadow.entries())
        assert (KIND_COUNTER, 5, b"five") in entries
        assert shadow.entry_count() == 2

    def test_record_overwrites(self, nvm):
        shadow = ShadowTracker(nvm)
        shadow.record(KIND_COUNTER, 5, b"old")
        shadow.record(KIND_COUNTER, 5, b"new")
        assert shadow.entry_count() == 1
        assert list(shadow.entries())[0][2] == b"new"

    def test_kinds_do_not_collide(self, nvm):
        shadow = ShadowTracker(nvm)
        shadow.record(KIND_COUNTER, 5, b"c")
        shadow.record(KIND_TREE_NODE, 5, b"t")
        assert shadow.entry_count() == 2

    def test_forget(self, nvm):
        shadow = ShadowTracker(nvm)
        shadow.record(KIND_COUNTER, 5, b"x")
        shadow.forget(KIND_COUNTER, 5)
        assert shadow.entry_count() == 0
        shadow.forget(KIND_COUNTER, 5)  # idempotent

    def test_tree_key_roundtrip(self):
        key = ShadowTracker.tree_key(7, 123456)
        assert ShadowTracker.split_tree_key(key) == (7, 123456)

    def test_clear(self, nvm):
        shadow = ShadowTracker(nvm)
        shadow.record(KIND_COUNTER, 1, b"x")
        shadow.clear()
        assert shadow.entry_count() == 0


class TestOsiris:
    def _encrypt(self, address, counter, plaintext):
        return xor_bytes(plaintext, ctr_pad(ENC_KEY, address, counter, 64))

    def test_recover_exact_counter(self, nvm, line_factory):
        osiris = OsirisRecovery(nvm, ENC_KEY, MAC_KEY, stride=4)
        data = line_factory("d")
        osiris.store_ecc(0x1000, data)
        ciphertext = self._encrypt(0x1000, 10, data)
        assert osiris.recover_counter(0x1000, ciphertext, 10) == 10

    def test_recover_stale_counter_within_stride(self, nvm, line_factory):
        osiris = OsirisRecovery(nvm, ENC_KEY, MAC_KEY, stride=4)
        data = line_factory("d")
        osiris.store_ecc(0x1000, data)
        ciphertext = self._encrypt(0x1000, 13, data)
        # NVM's stale counter says 10; true counter 13 is within stride.
        assert osiris.recover_counter(0x1000, ciphertext, 10) == 13

    def test_beyond_stride_unrecoverable(self, nvm, line_factory):
        osiris = OsirisRecovery(nvm, ENC_KEY, MAC_KEY, stride=4)
        data = line_factory("d")
        osiris.store_ecc(0x1000, data)
        ciphertext = self._encrypt(0x1000, 20, data)
        assert osiris.recover_counter(0x1000, ciphertext, 10) is None

    def test_missing_ecc_unrecoverable(self, nvm, line_factory):
        osiris = OsirisRecovery(nvm, ENC_KEY, MAC_KEY)
        ciphertext = self._encrypt(0x1000, 1, line_factory("d"))
        assert osiris.recover_counter(0x1000, ciphertext, 0) is None

    def test_tampered_ciphertext_unrecoverable(self, nvm, line_factory):
        osiris = OsirisRecovery(nvm, ENC_KEY, MAC_KEY)
        data = line_factory("d")
        osiris.store_ecc(0x1000, data)
        assert osiris.recover_counter(0x1000, b"\xff" * 64, 0) is None

    def test_stride_validation(self, nvm):
        with pytest.raises(ValueError):
            OsirisRecovery(nvm, ENC_KEY, MAC_KEY, stride=0)

    def test_probe_accounting(self, nvm, line_factory):
        osiris = OsirisRecovery(nvm, ENC_KEY, MAC_KEY, stride=4)
        data = line_factory("d")
        osiris.store_ecc(0x1000, data)
        ciphertext = self._encrypt(0x1000, 12, data)
        osiris.recover_counter(0x1000, ciphertext, 10)
        assert osiris.probe_count == 3  # probed 10, 11, 12
        assert osiris.recoveries == 1
