"""Tests for the strategy-composed controller matrix (PR 8).

Three obligations:

1. **Bit identity** — the six legacy Figure 5 configurations must
   produce exactly the metrics and crash-site hashes captured in
   ``tests/data/legacy_matrix_fixture.json`` before the refactor.
2. **New designs** — the Triad-NVM and SuperMem write-through
   controllers must survive the differential oracle and the fault
   campaign with zero silent outcomes.
3. **Composition** — every controller is a declared
   :class:`~repro.core.composition.ControllerSpec` over shared strategy
   objects; the per-design classes stay thin kind tags with no design
   ``if`` ladders.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from pathlib import Path

import pytest

from repro.config import ControllerKind, SimConfig, TreeUpdateScheme
from repro.core.composition import (
    CONTROLLER_SPECS,
    DOMAINS,
    DRAIN_STRATEGIES,
    WRITE_STRATEGIES,
    controller_spec,
)
from repro.core.controller import _CONTROLLERS, MemoryController, make_controller
from repro.engine import Simulator
from repro.faults.campaign import SILENT, run_fault_unit
from repro.harness.runner import run_workload
from repro.matrix import (
    CONTROLLER_MATRIX,
    LEGACY_MATRIX,
    MATRIX_GROUPS,
    NEW_MATRIX,
    controller_matrix,
    matrix_labels,
)
from repro.oracle.check import check_unit, enumerate_sites
from repro.oracle.driver import OracleExecution
from repro.oracle.ops import generate_ops

FIXTURE = json.loads(
    (Path(__file__).parent / "data" / "legacy_matrix_fixture.json").read_text()
)


def _digest(material: str) -> str:
    return hashlib.sha256(material.encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# 1. Bit identity against the pre-refactor capture
# ----------------------------------------------------------------------
class TestLegacyBitIdentity:
    @pytest.mark.parametrize("label", sorted(FIXTURE["configs"]))
    def test_metrics_and_crash_sites_match_fixture(self, label, monkeypatch):
        """Timing metrics, stats digests and crash-site state hashes are
        bit-identical to the monolithic pre-refactor controllers."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        monkeypatch.setenv("REPRO_UNIT_MEMO", "off")
        expect = FIXTURE["configs"][label]
        config = controller_matrix()[label]
        res = run_workload(
            config, FIXTURE["workload"],
            transactions=FIXTURE["transactions"], seed=FIXTURE["seed"],
        )
        assert res.cycles == expect["cycles"]
        assert res.instructions == expect["instructions"]
        stats_material = json.dumps(sorted(res.stats.items()), sort_keys=True)
        assert _digest(stats_material) == expect["stats_digest"]
        ops = generate_ops(
            FIXTURE["workload"], FIXTURE["oracle_transactions"], 0
        )
        enum = enumerate_sites(config, ops)
        site_material = json.dumps(
            [[s.cycle, s.kind, s.state_hash] for s in enum.sites]
        )
        assert len(enum.sites) == expect["sites"]
        assert enum.final_cycle == expect["final_cycle"]
        assert _digest(site_material) == expect["site_digest"]

    def test_fixture_covers_exactly_the_legacy_labels(self):
        assert sorted(FIXTURE["configs"]) == sorted(LEGACY_MATRIX)


# ----------------------------------------------------------------------
# 2. The two new designs: oracle + fault smoke
# ----------------------------------------------------------------------
class TestNewDesigns:
    @pytest.mark.parametrize("label", NEW_MATRIX)
    def test_oracle_smoke_no_divergence_full_detection(self, label):
        unit = check_unit(
            "hashmap", label, controller_matrix()[label], transactions=8,
        )
        assert unit.passed, unit.failures[:5]
        assert unit.sites_checked == unit.sites_enumerated > 0
        assert unit.attacks_detected == unit.attacks_run > 0

    @pytest.mark.parametrize("label", NEW_MATRIX)
    def test_fault_smoke_zero_silent(self, label):
        unit = run_fault_unit(
            "hashmap", label, controller_matrix()[label], 10, seed=0, sites=1,
        )
        assert unit.failures == []
        assert unit.count(SILENT) == 0
        assert unit.outcomes, "campaign injected nothing"

    def test_triad_caps_critical_tree_levels(self):
        triad = controller_matrix()["triad"].security
        eager = SimConfig().with_(
            controller=ControllerKind.PRE_WPQ_SECURE
        ).security
        assert triad.tree_update is TreeUpdateScheme.EAGER
        assert triad.triad_persist_levels == 2
        assert (
            triad.masu_critical_hash_latency < eager.masu_critical_hash_latency
        )

    def test_writethrough_charges_counter_persists(self):
        config = controller_matrix()["writethrough"]
        assert config.security.counter_write_through
        execution = OracleExecution(
            config, generate_ops("hashmap", 6, 1)
        )
        execution.run()
        masu = execution.controller.masu
        assert masu.counter_writes_through > 0
        assert "counter_writes_through" in masu.stats()
        assert "counter_writes_coalesced" in masu.stats()

    def test_legacy_stats_have_no_writethrough_keys(self):
        """The new stats keys must not leak into legacy digests."""
        execution = OracleExecution(
            controller_matrix()["prewpq-eager"], generate_ops("hashmap", 4, 1)
        )
        execution.run()
        stats = execution.controller.masu.stats()
        assert "counter_writes_through" not in stats
        assert "counter_writes_coalesced" not in stats


# ----------------------------------------------------------------------
# 3. Declarative composition
# ----------------------------------------------------------------------
class TestComposition:
    def test_every_kind_has_a_spec_and_a_class(self):
        assert set(CONTROLLER_SPECS) == set(_CONTROLLERS) == set(ControllerKind)

    @pytest.mark.parametrize("kind", sorted(ControllerKind, key=lambda k: k.value))
    def test_controller_wiring_matches_spec(self, kind):
        spec = controller_spec(kind)
        config = SimConfig().with_(controller=kind)
        controller = make_controller(Simulator(), config)
        assert controller.spec is spec
        assert type(controller._write) is WRITE_STRATEGIES[spec.protection]
        assert type(controller._drain) is DRAIN_STRATEGIES[spec.update]
        assert type(controller._domain) is DOMAINS[spec.domain]
        assert (controller.masu is not None) == spec.has_masu
        assert (controller.misu is not None) == spec.has_misu
        adr_drain = getattr(controller, "adr_drain", None)
        assert (adr_drain is not None) == spec.has_misu
        # ``battery_drain`` is bound as an instance attribute only on
        # the battery-backed domain (crash_system probes via getattr).
        battery = getattr(controller, "battery_drain", None)
        assert (battery is not None) == (spec.domain == "eadr-battery")

    def test_wpq_sizing_follows_spec(self):
        for kind in ControllerKind:
            spec = controller_spec(kind)
            config = SimConfig().with_(controller=kind)
            controller = make_controller(Simulator(), config)
            if spec.wpq_sizing == "misu":
                expected = config.adr.usable_entries(config.misu_design)
            elif spec.wpq_sizing == "eadr":
                expected = spec.eadr_buffer_entries
            else:
                expected = config.adr.budget_entries
            assert controller.wpq.capacity == expected, kind

    def test_design_classes_are_thin_tags_without_if_ladders(self):
        """No per-design branching: subclasses declare only their kind
        (plus docstrings/compat constants) and override no methods."""
        for cls in _CONTROLLERS.values():
            members = {
                name for name in vars(cls)
                if not name.startswith("__")
            }
            assert members <= {"kind", "EADR_BUFFER_ENTRIES"}, cls
            source = inspect.getsource(cls)
            assert "if " not in source, f"{cls.__name__} branches on design"
            assert "isinstance" not in source

    def test_base_controller_never_branches_on_kind(self):
        source = inspect.getsource(MemoryController)
        assert "ControllerKind." not in source
        assert "self.kind ==" not in source and "self.kind is" not in source

    def test_matrix_groups_are_consistent(self):
        assert CONTROLLER_MATRIX == LEGACY_MATRIX + NEW_MATRIX
        assert matrix_labels("all") == list(CONTROLLER_MATRIX)
        for group, labels in MATRIX_GROUPS.items():
            assert set(labels) <= set(CONTROLLER_MATRIX), group
        with pytest.raises(KeyError):
            matrix_labels("no-such-group")
