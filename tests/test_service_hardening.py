"""Tier-1 tests for the hardened wire surface.

Two halves:

* **hostile bytes** — the protocol decoder and the live asyncio server
  must turn every fuzzer-shaped frame (invalid UTF-8, pathological
  nesting, missing ``type``, oversized lines) into a typed ``error``
  reply on a connection that keeps working, never a dead session task.
* **client resilience** — :class:`ServiceClient` must reconnect with
  backoff through transport drops (submits are idempotent end to end)
  and surface a typed :class:`ServiceUnavailable` only after the retry
  policy is exhausted.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.common.retry import RetryPolicy
from repro.service import protocol as proto
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.protocol import JobSpec, ProtocolError
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer

SPEC = JobSpec(
    workload="hashmap", design="dolos-partial", transactions=4, seed=1
)


# ======================================================================
# Protocol-level fuzzing (pure functions)
# ======================================================================
class TestDecodeHostileBytes:
    def test_invalid_utf8_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            proto.decode_message(b'\xff\xfe{"type":"ping"}\n')

    def test_malformed_json_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            proto.decode_message(b'{"type": \n')

    def test_deep_nesting_never_escapes_as_recursion_error(self):
        hostile = b"[" * 100_000 + b"\n"
        with pytest.raises(ProtocolError):
            proto.decode_message(hostile)
        balanced = b"[" * 50_000 + b"]" * 50_000 + b"\n"
        with pytest.raises(ProtocolError):
            proto.decode_message(balanced)

    def test_missing_type_and_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            proto.decode_message(b'{"id": "r1"}\n')
        with pytest.raises(ProtocolError):
            proto.decode_message(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            proto.decode_message(b'"just a string"\n')

    def test_oversized_line_rejected(self):
        line = b'{"type":"x","pad":"' + b"a" * proto.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError):
            proto.decode_message(line)

    def test_legal_messages_still_decode(self):
        assert proto.decode_message(b'{"type":"ping"}\n') == {"type": "ping"}


class TestSanitizeRequestId:
    @pytest.mark.parametrize("request_id", ["r1", 7, 1.5, True, None])
    def test_scalars_pass_through(self, request_id):
        message = {"type": "submit", "id": request_id}
        assert proto.sanitize_request_id(message) == request_id

    def test_huge_string_ids_are_truncated(self):
        message = {"type": "submit", "id": "x" * 10_000}
        assert proto.sanitize_request_id(message) == "x" * 256

    @pytest.mark.parametrize(
        "request_id", [{"nested": "dict"}, ["list"], [[[[[]]]]]]
    )
    def test_structured_ids_echo_as_none(self, request_id):
        message = {"type": "submit", "id": request_id}
        assert proto.sanitize_request_id(message) is None


class TestHostileJobSpecs:
    def test_unhashable_workload_is_a_protocol_error(self):
        wire = dict(SPEC.to_wire(), workload={"evil": True})
        with pytest.raises(ProtocolError):
            JobSpec.from_wire(wire)

    def test_unhashable_design_is_a_protocol_error(self):
        wire = dict(SPEC.to_wire(), design=["dolos-partial"])
        with pytest.raises(ProtocolError):
            JobSpec.from_wire(wire)

    def test_bool_transactions_rejected(self):
        wire = dict(SPEC.to_wire(), transactions=True)
        with pytest.raises(ProtocolError):
            JobSpec.from_wire(wire)

    def test_non_mapping_overrides_rejected(self):
        wire = dict(SPEC.to_wire(), overrides=[1, 2])
        with pytest.raises(ProtocolError):
            JobSpec.from_wire(wire)

    def test_non_mapping_job_rejected(self):
        with pytest.raises(ProtocolError):
            JobSpec.from_wire("not an object")


# ======================================================================
# Live server under hostile bytes
# ======================================================================
def _run_async(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _with_server(handler):
    scheduler = ExperimentScheduler(
        jobs=1, batch_window=0.005, result_cache_dir=None
    )
    server = ExperimentServer(scheduler, port=0)
    await server.start()
    try:
        return await handler(server)
    finally:
        await server.shutdown()


class _RawClient:
    """Sends raw bytes — below the framing layer the server trusts."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, server) -> "_RawClient":
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        client = cls(reader, writer)
        hello = await client.read()
        assert hello["type"] == "hello"
        return client

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def read(self) -> dict:
        line = await self.reader.readline()
        assert line, "server closed the connection"
        return json.loads(line.decode("utf-8"))

    async def ping_ok(self) -> None:
        await self.send_raw(proto.encode_message({"type": "ping"}))
        assert (await self.read())["type"] == "pong"

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class TestServerSurvivesHostileBytes:
    def test_garbage_gets_typed_error_and_session_survives(self):
        async def scenario(server):
            client = await _RawClient.connect(server)
            await client.send_raw(b"\xff\xfe total garbage \xff\n")
            error = await client.read()
            assert (error["type"], error["code"]) == ("error", "protocol")
            await client.ping_ok()  # the session is still alive
            await client.close()

        _run_async(_with_server(scenario))

    def test_deep_nesting_gets_typed_error(self):
        async def scenario(server):
            client = await _RawClient.connect(server)
            await client.send_raw(b"[" * 200_000 + b"\n")
            error = await client.read()
            assert (error["type"], error["code"]) == ("error", "protocol")
            await client.ping_ok()
            await client.close()

        _run_async(_with_server(scenario))

    def test_missing_type_gets_typed_error(self):
        async def scenario(server):
            client = await _RawClient.connect(server)
            await client.send_raw(b'{"id": "r1"}\n')
            error = await client.read()
            assert (error["type"], error["code"]) == ("error", "protocol")
            await client.ping_ok()
            await client.close()

        _run_async(_with_server(scenario))

    def test_large_legal_frame_survives_the_asyncio_default_limit(self):
        # 100 KiB is legal under the 1 MiB protocol bound but larger
        # than asyncio's 64 KiB default stream limit — the server must
        # raise its limit, not kill the session with a ValueError.
        async def scenario(server):
            client = await _RawClient.connect(server)
            frame = {"type": "nope", "pad": "a" * (100 * 1024)}
            await client.send_raw(proto.encode_message(frame))
            error = await client.read()
            assert (error["type"], error["code"]) == ("error", "unknown-type")
            await client.ping_ok()
            await client.close()

        _run_async(_with_server(scenario))

    def test_oversized_line_gets_typed_error(self):
        async def scenario(server):
            client = await _RawClient.connect(server)
            await client.send_raw(
                b'{"type":"x","pad":"'
                + b"a" * (proto.MAX_LINE_BYTES + 1024)
                + b'"}\n'
            )
            error = await client.read()
            assert (error["type"], error["code"]) == ("error", "oversized")
            await client.close()

        _run_async(_with_server(scenario))

    def test_structured_id_is_not_echoed_back(self):
        async def scenario(server):
            client = await _RawClient.connect(server)
            bad = dict(SPEC.to_wire(), workload="no-such-workload")
            frame = {
                "type": "submit",
                "id": {"huge": ["nested", "id"]},
                "job": bad,
            }
            await client.send_raw(proto.encode_message(frame))
            error = await client.read()
            assert error["type"] == "error"
            assert error.get("id") is None
            await client.close()

        _run_async(_with_server(scenario))


# ======================================================================
# Client reconnect-with-backoff (scripted threaded server)
# ======================================================================
_HELLO = proto.encode_message(
    {"type": "hello", "version": proto.PROTOCOL_VERSION, "draining": False}
)


def _drop_after_submit(conn: socket.socket) -> None:
    """Greet, swallow one frame, hang up — a mid-flight transport drop."""
    conn.sendall(_HELLO)
    conn.makefile("rb").readline()


def _serve_result(conn: socket.socket) -> None:
    """Greet, then answer every submit with a result frame."""
    conn.sendall(_HELLO)
    reader = conn.makefile("rb")
    while True:
        line = reader.readline()
        if not line:
            return
        message = json.loads(line.decode("utf-8"))
        if message.get("type") != "submit":
            return
        conn.sendall(
            proto.encode_message(
                {
                    "type": "result",
                    "id": message["id"],
                    "key": "k",
                    "payload": {"ok": True},
                    "digest": "d",
                    "cached": False,
                }
            )
        )


class _ScriptedServer:
    """Unix-socket server that runs one behavior per connection.

    The last behavior repeats for any further connections, so a retry
    loop can redial more often than the script is long.
    """

    def __init__(self, path: str, behaviors) -> None:
        self.path = path
        self.behaviors = list(behaviors)
        self.connections = 0
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(8)
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            index = min(self.connections, len(self.behaviors) - 1)
            self.connections += 1
            try:
                self.behaviors[index](conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


def _fast_retry(attempts: int) -> RetryPolicy:
    return RetryPolicy(attempts=attempts, base_delay=0.01, jitter=0.0)


class TestClientReconnect:
    def test_submit_survives_one_transport_drop(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        server = _ScriptedServer(path, [_drop_after_submit, _serve_result])
        try:
            client = ServiceClient(path, timeout=5.0, retry=_fast_retry(3))
            seen = []
            client.on_retry = lambda attempt, exc: seen.append(
                (attempt, type(exc).__name__)
            )
            frame = client.submit(SPEC)
            client.close()
        finally:
            server.close()
        assert frame["type"] == "result"
        assert frame["payload"] == {"ok": True}
        assert client.retries == 1
        assert seen and seen[0][0] == 1
        assert server.connections == 2

    def test_permanent_outage_raises_typed_unavailable(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        server = _ScriptedServer(path, [_drop_after_submit])
        try:
            client = ServiceClient(path, timeout=5.0, retry=_fast_retry(2))
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.submit(SPEC)
            client.close()
        finally:
            server.close()
        assert excinfo.value.attempts == 2
        assert excinfo.value.code == "unavailable"
        assert isinstance(excinfo.value, ServiceError)

    def test_typed_server_errors_are_answers_not_outages(self, tmp_path):
        def serve_error(conn: socket.socket) -> None:
            conn.sendall(_HELLO)
            reader = conn.makefile("rb")
            line = reader.readline()
            message = json.loads(line.decode("utf-8"))
            conn.sendall(
                proto.encode_message(
                    {
                        "type": "error",
                        "id": message["id"],
                        "code": "bad-job",
                        "message": "rejected",
                    }
                )
            )
            reader.readline()

        path = str(tmp_path / "svc.sock")
        server = _ScriptedServer(path, [serve_error])
        try:
            client = ServiceClient(path, timeout=5.0, retry=_fast_retry(4))
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SPEC)
            client.close()
        finally:
            server.close()
        assert excinfo.value.code == "bad-job"
        assert client.retries == 0  # no pointless reconnects
        assert server.connections == 1

    def test_garbled_greeting_fails_fast_at_construction(self, tmp_path):
        # Construction is deliberately single-shot: a garbled hello is
        # visible immediately, and the *caller's* retry loop (e.g.
        # submit_many after a respawn) owns the redial policy.
        def garbled_hello(conn: socket.socket) -> None:
            conn.sendall(b"\xff not json \xff\n")

        path = str(tmp_path / "svc.sock")
        server = _ScriptedServer(path, [garbled_hello])
        with pytest.raises(ProtocolError):
            ServiceClient(path, timeout=5.0, retry=_fast_retry(2))
        server.close()
