"""Tests for the NVM device: functional store + banked timing."""

import pytest

from repro.config import NVMConfig
from repro.mem.nvm import NVMDevice


class TestFunctionalStore:
    def test_read_unwritten_is_none(self, nvm):
        assert nvm.read_line(0x1000) is None

    def test_write_read_roundtrip(self, nvm, line_factory):
        data = line_factory("a")
        nvm.write_line(0x1000, data)
        assert nvm.read_line(0x1000) == data

    def test_line_alignment(self, nvm, line_factory):
        data = line_factory("b")
        nvm.write_line(0x1010, data)  # unaligned address
        assert nvm.read_line(0x1000) == data

    def test_wrong_size_rejected(self, nvm):
        with pytest.raises(ValueError):
            nvm.write_line(0, b"short")

    def test_tamper_is_visible(self, nvm, line_factory):
        nvm.write_line(0, line_factory("x"))
        nvm.tamper_line(0, b"\xff" * 64)
        assert nvm.read_line(0) == b"\xff" * 64

    def test_resident_count(self, nvm, line_factory):
        nvm.write_line(0, line_factory("1"))
        nvm.write_line(64, line_factory("2"))
        nvm.write_line(0, line_factory("3"))  # overwrite
        assert nvm.resident_line_count == 2


class TestRegions:
    def test_region_isolation(self, nvm):
        nvm.region_write("a", 1, b"x")
        nvm.region_write("b", 1, b"y")
        assert nvm.region_read("a", 1) == b"x"
        assert nvm.region_read("b", 1) == b"y"

    def test_region_read_missing(self, nvm):
        assert nvm.region_read("a", 99) is None

    def test_region_clear(self, nvm):
        nvm.region_write("a", 1, b"x")
        nvm.region_clear("a")
        assert nvm.region_read("a", 1) is None

    def test_meta_stats(self, nvm):
        nvm.region_write("a", 1, b"x")
        nvm.region_read("a", 1)
        assert nvm.meta_writes == 1
        assert nvm.meta_reads == 1


class TestTiming:
    def test_read_latency(self):
        nvm = NVMDevice(NVMConfig())
        done = nvm.timed_access(100, 0x0, is_write=False)
        assert done == 100 + nvm.config.read_latency

    def test_write_latency(self):
        nvm = NVMDevice(NVMConfig())
        done = nvm.timed_access(100, 0x0, is_write=True)
        assert done == 100 + nvm.config.write_latency

    def test_same_bank_writes_serialize(self):
        nvm = NVMDevice(NVMConfig(num_banks=2))
        first = nvm.timed_access(0, 0x0, True)
        second = nvm.timed_access(0, 0x0 + 2 * 64, True)  # same bank
        assert second == first + nvm.config.write_latency

    def test_different_banks_overlap(self):
        nvm = NVMDevice(NVMConfig(num_banks=2))
        first = nvm.timed_access(0, 0x0, True)
        second = nvm.timed_access(0, 0x40, True)  # adjacent line, other bank
        assert second == first

    def test_reads_have_priority_over_writes(self):
        """Reads must not queue behind the drained write stream."""
        nvm = NVMDevice(NVMConfig(num_banks=1))
        nvm.timed_access(0, 0x0, True)  # bank busy with a write
        read_done = nvm.timed_access(0, 0x0, False)
        assert read_done == nvm.config.read_latency

    def test_write_accept_before_completion(self):
        nvm = NVMDevice(NVMConfig())
        accepted, done = nvm.timed_write_accept(0, 0x0)
        assert accepted == nvm.config.accept_latency
        assert done == nvm.config.write_latency

    def test_write_accept_queues_behind_busy_bank(self):
        nvm = NVMDevice(NVMConfig(num_banks=1))
        _, first_done = nvm.timed_write_accept(0, 0x0)
        accepted, _ = nvm.timed_write_accept(0, 0x0)
        assert accepted == first_done + nvm.config.accept_latency

    def test_reset_timing(self):
        nvm = NVMDevice(NVMConfig(num_banks=1))
        nvm.timed_access(0, 0x0, True)
        nvm.reset_timing()
        assert nvm.timed_access(0, 0x0, True) == nvm.config.write_latency

    def test_stats_counters(self):
        nvm = NVMDevice(NVMConfig())
        nvm.timed_access(0, 0, True)
        nvm.timed_access(0, 64, False)
        nvm.timed_meta_access(0, 5, False)
        stats = nvm.stats()
        assert stats["writes"] == 1
        assert stats["reads"] == 1
        assert stats["meta_reads"] == 1

    def test_bank_validation(self):
        with pytest.raises(ValueError):
            NVMConfig(num_banks=0)
