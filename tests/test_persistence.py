"""Tests for the mini-PMDK: heap, recorder, transactions."""

import pytest

from repro.cpu.trace import (
    OP_CLWB,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OP_TXBEGIN,
    OP_TXEND,
    summarize,
)
from repro.persistence.heap import HeapExhaustedError, PersistentHeap
from repro.persistence.recorder import TraceRecorder, lines_spanned
from repro.persistence.tx import Transaction, UndoLog


class TestHeap:
    def test_alloc_returns_distinct_addresses(self):
        heap = PersistentHeap()
        a = heap.alloc(16)
        b = heap.alloc(16)
        assert a != b

    def test_alignment(self):
        heap = PersistentHeap()
        assert heap.alloc(3) % 8 == 0
        assert heap.alloc_aligned(100, 64) % 64 == 0

    def test_free_list_reuse(self):
        heap = PersistentHeap()
        a = heap.alloc(32)
        heap.free(a, 32)
        assert heap.alloc(32) == a

    def test_size_classes_do_not_cross(self):
        heap = PersistentHeap()
        a = heap.alloc(32)
        heap.free(a, 32)
        b = heap.alloc(64)
        assert b != a

    def test_exhaustion(self):
        heap = PersistentHeap(size=1024)
        with pytest.raises(HeapExhaustedError):
            heap.alloc(4096)

    def test_invalid_requests(self):
        heap = PersistentHeap()
        with pytest.raises(ValueError):
            heap.alloc(0)
        with pytest.raises(ValueError):
            heap.alloc_aligned(8, 3)

    def test_base_alignment_required(self):
        with pytest.raises(ValueError):
            PersistentHeap(base=0x1001)

    def test_used_bytes(self):
        heap = PersistentHeap()
        heap.alloc(64)
        assert heap.used_bytes >= 64


class TestLinesSpanned:
    def test_single_line(self):
        assert lines_spanned(0x1000, 8) == [0x1000]

    def test_straddles_boundary(self):
        assert lines_spanned(0x1038, 16) == [0x1000, 0x1040]

    def test_multi_line(self):
        assert lines_spanned(0x1000, 200) == [0x1000, 0x1040, 0x1080, 0x10C0]

    def test_empty(self):
        assert lines_spanned(0x1000, 0) == []


class TestRecorder:
    def test_store_expands_to_lines(self):
        rec = TraceRecorder()
        rec.store(0x1030, 64)
        assert rec.ops == [(OP_STORE, 0x1000), (OP_STORE, 0x1040)]

    def test_persist_is_flush_then_fence(self):
        rec = TraceRecorder()
        rec.persist(0x1000, 8)
        assert rec.ops == [(OP_CLWB, 0x1000), (OP_FENCE,)]

    def test_zero_work_skipped(self):
        rec = TraceRecorder()
        rec.work(0)
        assert rec.ops == []

    def test_tx_ids_monotonic(self):
        rec = TraceRecorder()
        assert rec.tx_begin() == 0
        rec.tx_end(0)
        assert rec.tx_begin() == 1


class TestTransaction:
    def make_tx(self):
        heap = PersistentHeap()
        rec = TraceRecorder()
        log = UndoLog(heap)
        commit = heap.alloc_aligned(64, 64)
        return Transaction(rec, log, commit), rec, heap

    def test_snapshot_emits_log_persist(self):
        tx, rec, heap = self.make_tx()
        target = heap.alloc(64)
        with tx:
            tx.snapshot(target, 64)
            tx.store(target, 64)
        summary = summarize(list(rec.ops))
        # Log record persisted + data flushed + commit marker persisted.
        assert summary.fences == 3
        assert summary.clwbs >= 3

    def test_commit_flushes_dirty_lines(self):
        tx, rec, heap = self.make_tx()
        target = heap.alloc(128)
        with tx:
            tx.store(target, 128)
        flushed = {op[1] for op in rec.ops if op[0] == OP_CLWB}
        for line in lines_spanned(target, 128):
            assert line in flushed

    def test_early_flush_removes_from_commit_set(self):
        tx, rec, heap = self.make_tx()
        target = heap.alloc(64)
        with tx:
            tx.store(target, 64)
            tx.flush(target, 64)
            assert tx.dirty_line_count == 0

    def test_abort_on_exception(self):
        tx, rec, heap = self.make_tx()
        target = heap.alloc(64)
        with pytest.raises(RuntimeError):
            with tx:
                tx.store(target, 64)
                raise RuntimeError("boom")
        # Abort path still closed the transaction markers.
        codes = [op[0] for op in rec.ops]
        assert OP_TXBEGIN in codes
        assert OP_TXEND in codes

    def test_nested_begin_rejected(self):
        tx, _, _ = self.make_tx()
        tx.begin()
        with pytest.raises(RuntimeError):
            tx.begin()

    def test_ops_require_active_tx(self):
        tx, _, heap = self.make_tx()
        with pytest.raises(RuntimeError):
            tx.store(heap.alloc(8), 8)

    def test_persist_mid_transaction(self):
        tx, rec, heap = self.make_tx()
        target = heap.alloc(64)
        with tx:
            tx.store(target, 64)
            tx.persist(target, 64)
            assert tx.dirty_line_count == 0
        summary = summarize(list(rec.ops))
        assert summary.fences >= 2


class TestUndoLog:
    def test_records_advance(self):
        heap = PersistentHeap()
        log = UndoLog(heap, capacity_bytes=1024)
        a = log.append_offset(100)
        b = log.append_offset(100)
        assert b == a + 100

    def test_wraparound(self):
        heap = PersistentHeap()
        log = UndoLog(heap, capacity_bytes=256)
        log.append_offset(200)
        wrapped = log.append_offset(200)
        assert wrapped == log.base
