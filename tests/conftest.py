"""Shared fixtures for the test suite."""

import hashlib

import pytest

from repro.config import SimConfig
from repro.core.registers import PersistentRegisters
from repro.crypto.keys import KeyStore
from repro.engine import Simulator
from repro.mem.nvm import NVMDevice


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture(scope="session")
def tier1_metrics():
    """Every golden-snapshot headline metric, recomputed once per session.

    Shared by the golden-result suite and the characterization tests so
    the (deterministic) tier-1 experiment bundle runs a single time.
    """
    from repro.harness import golden

    return golden.compute_metrics()


@pytest.fixture
def config():
    return SimConfig()


@pytest.fixture
def keys():
    return KeyStore(0xBEEF)


@pytest.fixture
def registers():
    return PersistentRegisters()


@pytest.fixture
def nvm():
    return NVMDevice()


def deterministic_line(tag: str) -> bytes:
    """A unique, reproducible 64-byte payload for ``tag``."""
    return hashlib.blake2b(tag.encode(), digest_size=32).digest() * 2


@pytest.fixture
def line_factory():
    return deterministic_line
